"""End-to-end tests for the discrete-event simulation engine."""

import pytest

from repro.dag.job import Job
from repro.dag.stage import Stage, StageSpec, StageType
from repro.schedulers.base import Scheduler, SchedulingDecision
from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationConfig, SimulationEngine
from repro.utils.rng import make_rng
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, generate_workload


def make_stage(job_id, stage_id, stage_type, durations, **kwargs):
    spec = StageSpec(stage_id=stage_id, stage_type=stage_type, name=stage_id)
    return Stage(spec, job_id=job_id, task_durations=durations, **kwargs)


def simple_job(job_id, arrival, llm_work=2.0, regular_work=1.0):
    """LLM stage followed by a regular stage."""
    job = Job(job_id, "simple", arrival)
    job.add_stage(make_stage(job_id, "llm", StageType.LLM, [llm_work]))
    job.add_stage(make_stage(job_id, "reg", StageType.REGULAR, [regular_work]))
    job.add_dependency("llm", "reg")
    job.finalize()
    return job


def small_cluster(**overrides):
    defaults = dict(num_regular_executors=1, num_llm_executors=1, max_batch_size=2, latency_slope=0.0)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


class TestBasicExecution:
    def test_single_job_completes_with_exact_jct(self):
        job = simple_job("j0", arrival=0.0, llm_work=2.0, regular_work=1.0)
        engine = SimulationEngine([job], FcfsScheduler(), cluster=small_cluster())
        metrics = engine.run()
        assert job.is_finished
        assert metrics.average_jct == pytest.approx(3.0)
        assert metrics.makespan == pytest.approx(3.0)

    def test_arrival_time_respected(self):
        job = simple_job("j0", arrival=5.0)
        engine = SimulationEngine([job], FcfsScheduler(), cluster=small_cluster())
        metrics = engine.run()
        assert job.finish_time == pytest.approx(8.0)
        assert metrics.average_jct == pytest.approx(3.0)

    def test_two_jobs_queue_on_single_llm_executor(self):
        cluster = small_cluster(max_batch_size=1)
        jobs = [simple_job("j0", 0.0), simple_job("j1", 0.0)]
        engine = SimulationEngine(jobs, FcfsScheduler(), cluster=cluster)
        metrics = engine.run()
        # FCFS: j0 LLM 0-2, j0 reg 2-3; j1 LLM 2-4, j1 reg 4-5.
        assert metrics.job_completion_times["j0"] == pytest.approx(3.0)
        assert metrics.job_completion_times["j1"] == pytest.approx(5.0)

    def test_batching_runs_llm_tasks_concurrently(self):
        cluster = small_cluster(max_batch_size=2, latency_slope=0.0)
        jobs = [simple_job("j0", 0.0), simple_job("j1", 0.0)]
        metrics = SimulationEngine(jobs, FcfsScheduler(), cluster=cluster).run()
        # With perfect batching both LLM stages run 0-2 concurrently; the
        # single regular executor then serialises the two regular stages.
        assert metrics.job_completion_times["j0"] == pytest.approx(3.0)
        assert metrics.job_completion_times["j1"] == pytest.approx(4.0)

    def test_batching_slowdown_visible_in_jct(self):
        cluster = small_cluster(max_batch_size=2, latency_slope=1.0)
        jobs = [simple_job("j0", 0.0, regular_work=0.5), simple_job("j1", 0.0, regular_work=0.5)]
        metrics = SimulationEngine(jobs, FcfsScheduler(), cluster=cluster).run()
        # Batch of 2 at slope 1.0 halves the speed: both LLM stages take 4s.
        assert min(metrics.job_completion_times.values()) == pytest.approx(4.5)

    def test_empty_job_list_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine([], FcfsScheduler(), cluster=small_cluster())

    def test_duplicate_job_ids_rejected(self):
        jobs = [simple_job("j0", 0.0), simple_job("j0", 1.0)]
        with pytest.raises(ValueError):
            SimulationEngine(jobs, FcfsScheduler(), cluster=small_cluster())


class TestSchedulerInteraction:
    class CountingScheduler(FcfsScheduler):
        name = "counting"

        def __init__(self):
            self.arrivals = 0
            self.stage_completions = 0
            self.job_completions = 0

        def on_job_arrival(self, job, time):
            self.arrivals += 1

        def on_stage_complete(self, job, stage, time):
            self.stage_completions += 1

        def on_job_complete(self, job, time):
            self.job_completions += 1

    def test_lifecycle_hooks_invoked(self):
        scheduler = self.CountingScheduler()
        jobs = [simple_job("j0", 0.0), simple_job("j1", 0.5)]
        metrics = SimulationEngine(jobs, scheduler, cluster=small_cluster()).run()
        assert scheduler.arrivals == 2
        assert scheduler.stage_completions == 4
        assert scheduler.job_completions == 2
        assert metrics.num_scheduler_invocations > 0
        assert metrics.num_tasks_executed == 4

    class LazyScheduler(Scheduler):
        """Never schedules anything — must trigger the deadlock guard."""

        name = "lazy"

        def schedule(self, context):
            return SchedulingDecision()

    def test_non_work_conserving_scheduler_detected(self):
        job = simple_job("j0", 0.0)
        engine = SimulationEngine([job], self.LazyScheduler(), cluster=small_cluster())
        with pytest.raises(RuntimeError, match="work-conserving"):
            engine.run()

    def test_stale_preference_entries_ignored(self):
        class DuplicatePreferenceScheduler(FcfsScheduler):
            name = "dup"

            def schedule(self, context):
                decision = super().schedule(context)
                # Repeat every task three times; the engine must not crash or
                # double-place them.
                return SchedulingDecision(
                    regular_tasks=decision.regular_tasks * 3,
                    llm_tasks=decision.llm_tasks * 3,
                )

        jobs = [simple_job("j0", 0.0), simple_job("j1", 0.0)]
        metrics = SimulationEngine(jobs, DuplicatePreferenceScheduler(), cluster=small_cluster()).run()
        assert len(metrics.job_completion_times) == 2


class TestDynamicWorkloads:
    def test_planning_job_with_reveal_completes(self):
        job = Job("j0", "planning", 0.0)
        job.add_stage(make_stage("j0", "plan", StageType.LLM, [1.0]))
        job.add_stage(make_stage("j0", "tool_a", StageType.REGULAR, [2.0], visible=False))
        job.add_stage(make_stage("j0", "tool_b", StageType.REGULAR, [1.0], visible=False))
        job.add_stage(make_stage("j0", "dyn", StageType.DYNAMIC, []))
        job.add_dependency("plan", "tool_a")
        job.add_dependency("plan", "tool_b")
        job.add_dependency("tool_a", "dyn")
        job.add_dependency("tool_b", "dyn")
        job.add_reveal("plan", "tool_a")
        job.add_reveal("plan", "tool_b")
        job.finalize()
        cluster = small_cluster(num_regular_executors=2)
        metrics = SimulationEngine([job], FcfsScheduler(), cluster=cluster).run()
        # plan 0-1, tools run in parallel 1-3 and 1-2, dyn completes at 3.
        assert metrics.job_completion_times["j0"] == pytest.approx(3.0)

    def test_chain_job_with_skipped_iterations(self):
        job = Job("j0", "chain", 0.0)
        job.add_stage(make_stage("j0", "gen_0", StageType.LLM, [1.0]))
        job.add_stage(make_stage("j0", "exec_0", StageType.REGULAR, [0.5]))
        job.add_stage(make_stage("j0", "gen_1", StageType.LLM, [1.0], will_execute=False))
        job.add_stage(make_stage("j0", "exec_1", StageType.REGULAR, [0.5], will_execute=False))
        job.add_dependency("gen_0", "exec_0")
        job.add_dependency("exec_0", "gen_1")
        job.add_dependency("gen_1", "exec_1")
        job.finalize()
        metrics = SimulationEngine([job], FcfsScheduler(), cluster=small_cluster()).run()
        assert metrics.job_completion_times["j0"] == pytest.approx(1.5)

    def test_realistic_workload_runs_to_completion(self):
        spec = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=30, arrival_rate=1.5, seed=3)
        jobs = generate_workload(spec)
        cluster = Cluster(ClusterConfig(num_regular_executors=6, num_llm_executors=3, max_batch_size=8))
        metrics = SimulationEngine(jobs, FcfsScheduler(), cluster=cluster, workload_name="mixed").run()
        assert len(metrics.job_completion_times) == 30
        assert metrics.average_jct > 0
        assert metrics.makespan > 0
        assert 0 < metrics.utilization["llm"] <= 1.0


class TestScale:
    def test_1k_concurrent_jobs_complete(self):
        """Regression for the former O(n) active-job list: 1000 jobs arriving
        at once must run through the job index without quadratic scans."""
        jobs = []
        for i in range(1000):
            job = Job(f"j{i:04d}", "tiny", 0.0)
            job.add_stage(make_stage(f"j{i:04d}", "llm", StageType.LLM, [0.5]))
            job.finalize()
            jobs.append(job)
        cluster = small_cluster(num_llm_executors=4, max_batch_size=64, latency_slope=0.0)
        metrics = SimulationEngine(jobs, FcfsScheduler(), cluster=cluster).run()
        assert len(metrics.job_completion_times) == 1000
        assert metrics.num_tasks_executed == 1000


class TestOpenLoopStreaming:
    def job_stream(self, count, gap=0.25):
        for i in range(count):
            yield simple_job(f"s{i:04d}", arrival=i * gap)

    def test_generator_workload_runs_to_completion(self):
        cluster = small_cluster(num_regular_executors=2, max_batch_size=4)
        engine = SimulationEngine(self.job_stream(50), FcfsScheduler(), cluster=cluster)
        metrics = engine.run()
        assert len(metrics.job_completion_times) == 50
        assert engine.num_active_jobs == 0

    def test_streamed_jobs_match_materialized_run(self):
        materialized = SimulationEngine(
            [simple_job(f"s{i:04d}", arrival=i * 0.25) for i in range(30)],
            FcfsScheduler(),
            cluster=small_cluster(num_regular_executors=2, max_batch_size=4),
        ).run()
        streamed = SimulationEngine(
            self.job_stream(30),
            FcfsScheduler(),
            cluster=small_cluster(num_regular_executors=2, max_batch_size=4),
        ).run()
        assert streamed.job_completion_times == materialized.job_completion_times
        assert streamed.makespan == materialized.makespan

    def test_completed_jobs_released_from_engine_index(self):
        engine = SimulationEngine(
            self.job_stream(40, gap=2.0),  # sparse arrivals: ~1 active at a time
            FcfsScheduler(),
            cluster=small_cluster(),
        )
        peak = 0
        original = engine._admit_arrivals

        def tracking_admit(now):
            nonlocal peak
            original(now)
            peak = max(peak, engine.num_active_jobs)

        engine._admit_arrivals = tracking_admit
        metrics = engine.run()
        assert len(metrics.job_completion_times) == 40
        assert peak <= 3  # far below 40: the stream was never materialized

    def test_out_of_order_stream_rejected(self):
        def bad_stream():
            yield simple_job("a", arrival=5.0)
            yield simple_job("b", arrival=1.0)

        engine = SimulationEngine(bad_stream(), FcfsScheduler(), cluster=small_cluster())
        with pytest.raises(ValueError, match="not time-ordered"):
            engine.run()

    def test_duplicate_ids_in_stream_rejected(self):
        def dup_stream():
            yield simple_job("a", arrival=0.0)
            yield simple_job("a", arrival=1.0)

        engine = SimulationEngine(dup_stream(), FcfsScheduler(), cluster=small_cluster())
        with pytest.raises(ValueError, match="duplicate job id"):
            engine.run()


class TestSimulationConfig:
    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_simulated_time=0)
        with pytest.raises(ValueError):
            SimulationConfig(max_iterations=0)
        with pytest.raises(ValueError):
            SimulationConfig(eps=0)

    def llm_only_job(self, job_id, work):
        job = Job(job_id, "llm_only", 0.0)
        job.add_stage(make_stage(job_id, "llm", StageType.LLM, [work]))
        job.finalize()
        return job

    def test_eps_knob_controls_llm_completion_threshold(self):
        # Two batched LLM tasks finishing 5e-4s apart: with a coarse eps the
        # near-finished task is swept up at the first completion event; with
        # the default fine eps it gets its own later event.
        def run(eps):
            jobs = [self.llm_only_job("j0", 1.0), self.llm_only_job("j1", 1.0005)]
            return SimulationEngine(
                jobs,
                FcfsScheduler(),
                cluster=small_cluster(max_batch_size=2, latency_slope=0.0),
                config=SimulationConfig(eps=eps),
            ).run()

        coarse = run(1e-2)
        assert coarse.job_completion_times["j1"] == coarse.job_completion_times["j0"]
        fine = run(1e-9)
        assert fine.job_completion_times["j1"] > fine.job_completion_times["j0"]

    def test_coarse_eps_sweep_matches_reference_engine(self):
        # Regression: the fast path must gate LLM completion sweeps on the
        # candidate task's *remaining work* (the reference rule), not on its
        # completion time.  With batch 2 and slope 0.06 the progress rate is
        # 1/1.06, so at the t=1.0 regular-completion event the LLM task
        # below has remaining work 0.0099 <= eps but a completion time of
        # ~1.0105 > now + eps; a time-based gate deferred it.
        from repro.simulator.reference import ReferenceSimulationEngine

        def build_jobs():
            reg = Job("r0", "reg_only", 0.0)
            reg.add_stage(make_stage("r0", "reg", StageType.REGULAR, [1.0]))
            reg.finalize()
            near = self.llm_only_job("l0", 0.9533)
            far = self.llm_only_job("l1", 2.0)
            return [reg, near, far]

        def run(engine_cls):
            return engine_cls(
                build_jobs(),
                FcfsScheduler(),
                cluster=small_cluster(max_batch_size=2, latency_slope=0.06),
                config=SimulationConfig(eps=1e-2),
            ).run()

        fast = run(SimulationEngine)
        reference = run(ReferenceSimulationEngine)
        assert fast.job_completion_times == reference.job_completion_times
        assert fast.job_completion_times["l0"] == pytest.approx(1.0)

    def test_iteration_guard_triggers(self):
        job = simple_job("j0", 0.0)
        engine = SimulationEngine(
            [job],
            FcfsScheduler(),
            cluster=small_cluster(),
            config=SimulationConfig(max_iterations=1),
        )
        with pytest.raises(RuntimeError, match="max_iterations"):
            engine.run()
