"""Tests for stages."""

import pytest

from repro.dag.stage import Stage, StageSpec, StageState, StageType
from repro.dag.task import TaskType


def make_stage(stage_type=StageType.LLM, durations=(3.0, 4.0), **kwargs):
    spec = StageSpec(stage_id="s0", stage_type=stage_type, name="stage", num_tasks=len(durations))
    return Stage(spec, job_id="j0", task_durations=durations, **kwargs)


class TestSpec:
    def test_negative_num_tasks_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(stage_id="s", stage_type=StageType.REGULAR, num_tasks=-1)

    def test_profile_key_defaults_to_stage_id(self):
        spec = StageSpec(stage_id="s1", stage_type=StageType.LLM)
        assert spec.key == "s1"
        spec2 = StageSpec(stage_id="s1", stage_type=StageType.LLM, profile_key="llm_gen")
        assert spec2.key == "llm_gen"


class TestConstruction:
    def test_llm_stage_creates_llm_tasks(self):
        stage = make_stage(StageType.LLM)
        assert all(t.task_type is TaskType.LLM for t in stage.tasks)
        assert stage.is_llm

    def test_regular_stage_creates_regular_tasks(self):
        stage = make_stage(StageType.REGULAR)
        assert all(t.task_type is TaskType.REGULAR for t in stage.tasks)

    def test_dynamic_stage_flag(self):
        stage = make_stage(StageType.DYNAMIC, durations=())
        assert stage.is_dynamic

    def test_total_work(self):
        assert make_stage(durations=(3.0, 4.0)).total_work == pytest.approx(7.0)

    def test_duration_zero_when_not_executing(self):
        stage = make_stage(durations=(3.0,), will_execute=False)
        assert stage.duration == 0.0


class TestLifecycle:
    def test_ready_running_finished(self):
        stage = make_stage(durations=(1.0,))
        assert stage.state is StageState.BLOCKED
        stage.mark_ready()
        stage.mark_running()
        task = stage.tasks[0]
        task.mark_running(0.0, "e")
        task.mark_finished(1.0)
        stage.mark_finished(1.0)
        assert stage.is_complete
        assert stage.executed_duration == pytest.approx(1.0)

    def test_cannot_finish_with_unfinished_tasks(self):
        stage = make_stage(durations=(1.0,))
        stage.mark_ready()
        with pytest.raises(RuntimeError):
            stage.mark_finished(1.0)

    def test_cannot_mark_ready_twice(self):
        stage = make_stage()
        stage.mark_ready()
        with pytest.raises(RuntimeError):
            stage.mark_ready()

    def test_skip_pending_stage(self):
        stage = make_stage(durations=(5.0,), will_execute=False)
        stage.mark_ready()
        stage.mark_skipped(3.0)
        assert stage.state is StageState.SKIPPED
        assert stage.executed_duration == 0.0
        assert stage.is_complete

    def test_skip_is_idempotent_for_complete_stages(self):
        stage = make_stage(durations=(5.0,), will_execute=False)
        stage.mark_ready()
        stage.mark_skipped(3.0)
        stage.mark_skipped(4.0)
        assert stage.finish_time == 3.0

    def test_cannot_skip_started_stage(self):
        stage = make_stage(durations=(5.0,))
        stage.mark_ready()
        stage.mark_running()
        stage.tasks[0].mark_running(0.0, "e")
        with pytest.raises(RuntimeError):
            stage.mark_skipped(1.0)

    def test_executed_duration_none_until_complete(self):
        stage = make_stage()
        assert stage.executed_duration is None

    def test_pending_and_running_task_views(self):
        stage = make_stage(durations=(1.0, 2.0))
        assert len(stage.pending_tasks()) == 2
        stage.mark_ready()
        stage.mark_running()
        stage.tasks[0].mark_running(0.0, "e")
        assert len(stage.pending_tasks()) == 1
        assert len(stage.running_tasks()) == 1
