"""Preemption invariants: work conservation, no double placement, JCT wins.

The acceptance bar for the preemptive extension:

* checkpoint/resume conserves work exactly (no progress lost, no work
  double-counted on the executors),
* a task is never placed twice concurrently,
* the default (non-preemptive) engine path is untouched — covered by the
  golden-trace suite, re-asserted here via metrics counters,
* preemptive SRTF beats non-preemptive SRTF on mean JCT under a bursty
  MMPP workload.
"""

import pytest

from repro.dag.task import Task, TaskState, TaskType
from repro.schedulers.base import (
    PreemptionDirective,
    Scheduler,
    SchedulingDecision,
)
from repro.schedulers.preemptive import PreemptiveSrtfScheduler
from repro.schedulers.registry import available_schedulers, create_scheduler
from repro.schedulers.srtf import SrtfScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.simulator.executor import LLMExecutor, RegularExecutor
from repro.workloads.arrivals import BurstyProcess, open_loop_jobs

def true_remaining(job, context):
    return job.true_remaining_work()


def bursty_stream(seed=21, max_jobs=120):
    process = BurstyProcess(
        base_rate=0.4,
        burst_rate=6.0,
        mean_normal_duration=80.0,
        mean_burst_duration=15.0,
        seed=seed,
    )
    return open_loop_jobs(process, seed=seed, max_jobs=max_jobs)


def small_cluster():
    return Cluster(ClusterConfig(num_regular_executors=6, num_llm_executors=2, max_batch_size=4))


def run_bursty(scheduler, seed=21, max_jobs=120):
    engine = SimulationEngine(
        bursty_stream(seed=seed, max_jobs=max_jobs), scheduler, cluster=small_cluster()
    )
    metrics = engine.run()
    return engine, metrics


# --------------------------------------------------------------------------- #
# Unit level: task and executor checkpointing
# --------------------------------------------------------------------------- #
class TestTaskPreemption:
    def test_checkpoint_conserves_progress(self):
        task = Task(job_id="j", stage_id="s", task_type=TaskType.REGULAR, work=4.0)
        task.mark_running(0.0, "reg-0")
        task.advance(1.5)
        wasted = task.mark_preempted(checkpoint=True)
        assert wasted == 0.0
        assert task.state is TaskState.PENDING
        assert task.remaining_work == pytest.approx(2.5)
        assert task.executor_id is None
        assert task.num_preemptions == 1

    def test_restart_discards_progress(self):
        task = Task(job_id="j", stage_id="s", task_type=TaskType.LLM, work=4.0)
        task.mark_running(0.0, "llm-0")
        task.advance(1.5)
        wasted = task.mark_preempted(checkpoint=False)
        assert wasted == pytest.approx(1.5)
        assert task.remaining_work == pytest.approx(4.0)

    def test_pending_task_cannot_be_preempted(self):
        task = Task(job_id="j", stage_id="s", task_type=TaskType.REGULAR, work=1.0)
        with pytest.raises(RuntimeError):
            task.mark_preempted()


class TestExecutorPreemption:
    def test_regular_checkpoint_then_resume(self):
        executor = RegularExecutor("reg-0")
        task = Task(job_id="j", stage_id="s", task_type=TaskType.REGULAR, work=5.0)
        executor.assign(task, 0.0)
        wasted = executor.preempt_current(2.0)
        assert wasted == 0.0
        assert executor.is_idle
        assert task.remaining_work == pytest.approx(3.0)
        # Resume elsewhere: completion reflects only the remaining work.
        resumed = RegularExecutor("reg-1")
        resumed.assign(task, 10.0)
        assert resumed.completion_time() == pytest.approx(13.0)

    def test_llm_preempt_speeds_up_batch(self):
        executor = LLMExecutor("llm-0", max_batch_size=2)
        keep = Task(job_id="a", stage_id="s", task_type=TaskType.LLM, work=4.0)
        kick = Task(job_id="b", stage_id="s", task_type=TaskType.LLM, work=4.0)
        executor.add_task(keep, 0.0)
        executor.add_task(kick, 0.0)
        rate_before = executor._rate()
        executor.preempt_task(kick, 1.0)
        assert kick.state is TaskState.PENDING
        assert kick.progress == pytest.approx(1.0 * rate_before)
        assert executor.batch_size == 1
        assert executor._rate() > rate_before


# --------------------------------------------------------------------------- #
# Engine level
# --------------------------------------------------------------------------- #
class TestEnginePreemption:
    def test_preemptive_srtf_beats_srtf_on_bursty_mmpp(self):
        _, srtf = run_bursty(SrtfScheduler(remaining_estimator=true_remaining))
        _, preemptive = run_bursty(
            PreemptiveSrtfScheduler(remaining_estimator=true_remaining)
        )
        assert len(srtf.job_completion_times) == len(preemptive.job_completion_times) == 120
        assert preemptive.num_preemptions > 0
        assert preemptive.wasted_work == 0.0  # checkpointing conserves work
        assert preemptive.average_jct < srtf.average_jct

    def test_work_conservation_under_checkpoint_resume(self):
        # Materialize the stream so job/task state survives completion.
        jobs = list(bursty_stream(max_jobs=60))
        engine = SimulationEngine(
            jobs,
            PreemptiveSrtfScheduler(remaining_estimator=true_remaining),
            cluster=small_cluster(),
        )
        metrics = engine.run()
        assert metrics.num_preemptions > 0

        finished = [t for job in jobs for s in job.stages.values() for t in s.tasks if t.is_finished]
        # Every finished task carries exactly its work as progress — no
        # progress lost to a checkpoint, none double-counted on resume.
        assert all(t.progress == pytest.approx(t.work) for t in finished)
        # Nothing is left running or half-done on an executor.
        assert all(
            t.state is not TaskState.RUNNING
            for job in jobs
            for s in job.stages.values()
            for t in s.tasks
        )
        # Regular executors bill exactly the work they ran (speed 1):
        # preempted-and-resumed segments must add up to the task work.
        finished_regular_work = sum(
            t.work for t in finished if t.task_type is TaskType.REGULAR
        )
        total_regular_busy = sum(e.busy_time for e in engine.cluster.regular_executors)
        assert total_regular_busy == pytest.approx(finished_regular_work, rel=1e-9)

    def test_no_double_placement_and_all_tasks_finish(self):
        engine, metrics = run_bursty(
            PreemptiveSrtfScheduler(remaining_estimator=true_remaining), max_jobs=60
        )
        # The engine raises on any attempt to run a non-pending task, so a
        # completed run is itself the no-double-placement certificate; the
        # stronger check: every job left the active set fully finished.
        assert engine.num_active_jobs == 0
        assert len(metrics.job_completion_times) == 60

    def test_preemptive_run_is_deterministic(self):
        _, first = run_bursty(
            PreemptiveSrtfScheduler(remaining_estimator=true_remaining), max_jobs=60
        )
        _, second = run_bursty(
            PreemptiveSrtfScheduler(remaining_estimator=true_remaining), max_jobs=60
        )
        assert first.job_completion_times == second.job_completion_times
        assert first.num_preemptions == second.num_preemptions

    def test_non_preemptive_runs_never_preempt(self):
        _, metrics = run_bursty(SrtfScheduler(remaining_estimator=true_remaining), max_jobs=40)
        assert metrics.num_preemptions == 0
        assert metrics.wasted_work == 0.0
        assert metrics.scale_events == []

    def test_victim_on_draining_executor_is_skipped(self):
        """Preempting a draining executor's task would shrink capacity:
        the drain swallows the freed slot, so the engine must let it run."""
        from repro.simulator.pool import PoolSpec

        cluster = Cluster(
            pools=[
                PoolSpec("cpu", TaskType.REGULAR, 1, min_executors=0),
                PoolSpec("gpu", TaskType.LLM, 1, max_batch_size=2, min_executors=1),
            ]
        )
        jobs = list(bursty_stream(max_jobs=5))
        engine = SimulationEngine(
            jobs,
            PreemptiveSrtfScheduler(remaining_estimator=true_remaining),
            cluster=cluster,
        )
        task = Task(job_id=jobs[0].job_id, stage_id="x", task_type=TaskType.REGULAR, work=9.0)
        engine._active_jobs[jobs[0].job_id] = jobs[0]
        placed = cluster.assign_regular_task(task, 0.0)
        assert placed is not None
        cluster.pool("cpu").scale_down(1)  # busy executor drains
        assert not cluster.pool("cpu").is_active(placed)
        engine._apply_preemption(PreemptionDirective(task=task))
        assert task.state is TaskState.RUNNING  # skipped, still running
        assert engine.metrics.num_preemptions == 0

    def test_scheduler_never_targets_inactive_executors(self):
        """The context flags draining/retired executors; the scheduler must
        spend its victim budget on eligible tasks only."""
        from repro.dag.job import Job
        from repro.dag.stage import Stage, StageSpec, StageType
        from repro.schedulers.base import SchedulingContext

        def regular_job(job_id, work):
            job = Job(job_id, "app", 0.0)
            job.add_stage(Stage(StageSpec("reg", StageType.REGULAR), job_id, [work]))
            job.finalize()
            return job

        long_job = regular_job("long", 100.0)
        other_job = regular_job("other", 50.0)
        blocked_job = regular_job("blocked", 1.0)
        long_task = long_job.stage("reg").tasks[0]
        other_task = other_job.stage("reg").tasks[0]
        long_task.mark_running(0.0, "reg-0")
        other_task.mark_running(0.0, "reg-1")

        scheduler = PreemptiveSrtfScheduler(remaining_estimator=true_remaining)
        context = SchedulingContext(
            time=0.0,
            jobs=[long_job, other_job, blocked_job],
            free_regular_slots=0,
            free_llm_slots=0,
            inactive_executor_ids={"reg-0"},  # the longest-remaining victim drains
        )
        decision = scheduler.schedule(context)
        targeted = {d.task.uid for d in decision.preemptions}
        # Without the inactive filter SRTF would pick long_task (remaining
        # 100 > 50); with it, the budget goes to the eligible victim.
        assert targeted == {other_task.uid}

    def test_stale_directives_are_skipped(self):
        class OverzealousScheduler(Scheduler):
            """Preempts tasks that already finished (stale directives)."""

            name = "overzealous"
            preemptive = True

            def __init__(self):
                self._finished = []

            def on_stage_complete(self, job, stage, time):
                self._finished.extend(stage.tasks)

            def schedule(self, context):
                decision = SchedulingDecision.from_tasks(context.schedulable_tasks())
                decision.preemptions = [
                    PreemptionDirective(task=t) for t in self._finished[-4:]
                ]
                return decision

        engine, metrics = run_bursty(OverzealousScheduler(), max_jobs=30)
        assert len(metrics.job_completion_times) == 30
        assert metrics.num_preemptions == 0  # every directive was stale


class TestVictimFloor:
    """Near-finish victims are pure churn: their slot frees at the next
    completion event anyway, and restart-from-scratch preemption discards
    almost the whole task.  The remaining-time floor must skip them."""

    def test_floor_reduces_wasted_work_on_bursty_mmpp(self):
        _, greedy = run_bursty(
            PreemptiveSrtfScheduler(
                remaining_estimator=true_remaining,
                min_victim_remaining=0.0,
                checkpoint=False,
            )
        )
        _, floored = run_bursty(
            PreemptiveSrtfScheduler(
                remaining_estimator=true_remaining,
                min_victim_remaining=0.5,
                checkpoint=False,
            )
        )
        assert greedy.wasted_work > 0
        assert floored.wasted_work < greedy.wasted_work
        # Sparing nearly-done victims must not regress mean JCT.
        assert floored.average_jct <= greedy.average_jct * 1.01
        assert len(floored.job_completion_times) == len(greedy.job_completion_times)

    def test_default_floor_preserves_checkpointed_behavior(self):
        """The eps-scale default only excludes effectively-finished tasks,
        so the checkpointing scheduler's trace is unchanged."""
        _, zero = run_bursty(
            PreemptiveSrtfScheduler(remaining_estimator=true_remaining, min_victim_remaining=0.0)
        )
        _, default = run_bursty(PreemptiveSrtfScheduler(remaining_estimator=true_remaining))
        assert default.job_completion_times == zero.job_completion_times
        assert default.num_preemptions == zero.num_preemptions

    def test_floor_skips_near_finish_victim_for_next_eligible(self):
        from repro.dag.job import Job
        from repro.dag.stage import Stage, StageSpec, StageType
        from repro.schedulers.base import SchedulingContext

        def regular_job(job_id, work, arrival=0.0):
            job = Job(job_id, "app", arrival)
            job.add_stage(Stage(StageSpec("reg", StageType.REGULAR), job_id, [work]))
            job.finalize()
            return job

        # The longest-remaining job's task is milliseconds from finishing;
        # the next victim down still has real time to run.
        almost_done = regular_job("long", 100.0)
        mid_job = regular_job("mid", 50.0)
        blocked_job = regular_job("blocked", 1.0, arrival=99.0)
        near_task = almost_done.stage("reg").tasks[0]
        mid_task = mid_job.stage("reg").tasks[0]
        near_task.mark_running(0.0, "reg-0")   # at t=99.9: ~0.1s remaining
        mid_task.mark_running(99.0, "reg-1")   # at t=99.9: ~49.1s remaining

        scheduler = PreemptiveSrtfScheduler(
            remaining_estimator=true_remaining, min_victim_remaining=0.5
        )
        context = SchedulingContext(
            time=99.9,
            jobs=[almost_done, mid_job, blocked_job],
            free_regular_slots=0,
            free_llm_slots=0,
        )
        decision = scheduler.schedule(context)
        targeted = {d.task.uid for d in decision.preemptions}
        # Without the floor SRTF would checkpoint near_task (its job has
        # remaining 100 > 50); with it, the budget goes to mid_task.
        assert targeted == {mid_task.uid}

    def test_floor_accounts_for_executor_speed(self):
        """On a 2x pool a task's wall-clock remaining time is half its
        remaining work; the floor must spare it once the *wall* time is
        below the threshold (context carries the executor speed map)."""
        from repro.dag.job import Job
        from repro.dag.stage import Stage, StageSpec, StageType
        from repro.schedulers.base import SchedulingContext

        def regular_job(job_id, work, arrival=0.0):
            job = Job(job_id, "app", arrival)
            job.add_stage(Stage(StageSpec("reg", StageType.REGULAR), job_id, [work]))
            job.finalize()
            return job

        fast_job = regular_job("fast", 100.0)
        blocked_job = regular_job("blocked", 1.0, arrival=49.0)
        fast_task = fast_job.stage("reg").tasks[0]
        fast_task.mark_running(0.0, "turbo-0")

        scheduler = PreemptiveSrtfScheduler(
            remaining_estimator=true_remaining, min_victim_remaining=0.5
        )
        # At t=49.9 on a speed-2.0 executor the task has 100/2 - 49.9 =
        # 0.1s of wall time left — below the floor, so no preemption.
        context = SchedulingContext(
            time=49.9,
            jobs=[fast_job, blocked_job],
            free_regular_slots=0,
            free_llm_slots=0,
            executor_speeds={"turbo-0": 2.0},
        )
        assert scheduler.schedule(context).preemptions == []
        # Without the speed map the same task looks 50.1s from finishing
        # and gets needlessly checkpointed.
        context_no_speeds = SchedulingContext(
            time=49.9,
            jobs=[fast_job, blocked_job],
            free_regular_slots=0,
            free_llm_slots=0,
        )
        assert scheduler.schedule(context_no_speeds).preemptions != []

    def test_negative_floor_rejected(self):
        with pytest.raises(ValueError):
            PreemptiveSrtfScheduler(min_victim_remaining=-0.1)


class TestRegistry:
    def test_preemptive_name_behind_flag(self):
        assert "srtf_preempt" not in available_schedulers()
        assert "srtf_preempt" in available_schedulers(include_preemptive=True)

    def test_factory_builds_preemptive_srtf(self):
        from repro.schedulers.priors import ApplicationPriors
        from repro.workloads.mixtures import default_applications

        priors = ApplicationPriors.from_applications(
            default_applications().values(), n_samples=5, seed=1
        )
        scheduler = create_scheduler("srtf_preempt", priors=priors)
        assert isinstance(scheduler, PreemptiveSrtfScheduler)
        assert scheduler.preemptive is True
