"""Cross-module integration invariants: determinism and capacity limits."""

import pytest

from repro.core.llmsched import LLMSchedConfig, LLMSchedScheduler
from repro.core.profiler import BayesianProfiler
from repro.dag.task import TaskState
from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, default_applications, generate_workload


def run_once(scheduler_factory, seed=5, num_jobs=25):
    applications = default_applications()
    spec = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=num_jobs, arrival_rate=1.2, seed=seed)
    jobs = generate_workload(spec, applications=applications)
    cluster = Cluster(ClusterConfig(num_regular_executors=4, num_llm_executors=2, max_batch_size=4))
    engine = SimulationEngine(jobs, scheduler_factory(), cluster=cluster, workload_name="mixed")
    metrics = engine.run()
    return jobs, cluster, metrics


class TestDeterminism:
    def test_fcfs_is_reproducible(self):
        _, _, first = run_once(FcfsScheduler)
        _, _, second = run_once(FcfsScheduler)
        assert first.job_completion_times == pytest.approx(second.job_completion_times)
        assert first.makespan == pytest.approx(second.makespan)

    def test_llmsched_is_reproducible(self):
        profiler = BayesianProfiler().fit(default_applications().values(), n_profile_jobs=40, seed=0)

        def factory():
            return LLMSchedScheduler(profiler, LLMSchedConfig(seed=3))

        _, _, first = run_once(factory)
        _, _, second = run_once(factory)
        assert first.job_completion_times == pytest.approx(second.job_completion_times)


class TestExecutionInvariants:
    def test_all_executed_tasks_finish_and_capacity_respected(self):
        jobs, cluster, metrics = run_once(FcfsScheduler)
        # Every job finished, every non-skipped task reached FINISHED exactly once.
        for job in jobs:
            assert job.is_finished
            assert job.jct is not None and job.jct >= 0
            for stage in job.stages.values():
                if stage.state.value == "finished":
                    assert all(t.state is TaskState.FINISHED for t in stage.tasks)
                    for task in stage.tasks:
                        assert task.finish_time is not None
                        assert task.finish_time >= task.start_time
                        assert task.start_time >= job.arrival_time - 1e-9
                elif stage.state.value == "skipped":
                    assert all(t.state is TaskState.PENDING for t in stage.tasks)
        # Executors end the run empty.
        assert all(e.is_idle for e in cluster.regular_executors)
        assert all(e.is_idle for e in cluster.llm_executors)
        # Utilisation fractions are physical.
        assert 0.0 <= metrics.utilization["llm"] <= 1.0 + 1e-9
        assert 0.0 <= metrics.utilization["regular"] <= 1.0 + 1e-9
