"""Tests for the placement layer (policies mapping tasks onto pools)."""

import pytest

from repro.dag.task import Task, TaskType
from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.simulator.placement import (
    BestFitPlacement,
    GreedyFirstFitPlacement,
    PoolAffinityPlacement,
    PrefillDecodePlacement,
    available_placement_policies,
    create_placement_policy,
)
from repro.simulator.pool import PoolSpec
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, generate_workload


def llm_task(work=1.0):
    return Task(job_id="j", stage_id="s", task_type=TaskType.LLM, work=work)


def regular_task(work=1.0):
    return Task(job_id="j", stage_id="s", task_type=TaskType.REGULAR, work=work)


def two_llm_pool_cluster():
    return Cluster(
        pools=[
            PoolSpec("cpu", TaskType.REGULAR, 4),
            PoolSpec("gpu-a", TaskType.LLM, 1, max_batch_size=4),
            PoolSpec("gpu-b", TaskType.LLM, 1, max_batch_size=4),
        ]
    )


class TestFactory:
    def test_names(self):
        assert "greedy" in available_placement_policies()
        assert "best_fit" in available_placement_policies()

    def test_create(self):
        assert isinstance(create_placement_policy("greedy"), GreedyFirstFitPlacement)
        assert isinstance(create_placement_policy("best_fit"), BestFitPlacement)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            create_placement_policy("nope")


class TestGreedyFirstFit:
    def test_first_pool_in_declaration_order(self):
        cluster = two_llm_pool_cluster()
        policy = GreedyFirstFitPlacement()
        assert policy.select_pool(cluster, llm_task()).name == "gpu-a"

    def test_skips_full_pools(self):
        cluster = two_llm_pool_cluster()
        policy = GreedyFirstFitPlacement()
        for _ in range(4):
            cluster.pool("gpu-a").assign(llm_task(), 0.0)
        assert policy.select_pool(cluster, llm_task()).name == "gpu-b"

    def test_none_when_everything_full(self):
        cluster = two_llm_pool_cluster()
        policy = GreedyFirstFitPlacement()
        for _ in range(8):
            assert cluster.assign_llm_task(llm_task(), 0.0) is not None
        assert policy.select_pool(cluster, llm_task()) is None


class TestBestFit:
    def test_prefers_tightest_pool(self):
        cluster = two_llm_pool_cluster()
        policy = BestFitPlacement()
        for _ in range(3):
            cluster.pool("gpu-b").assign(llm_task(), 0.0)
        # gpu-b has 1 free slot vs gpu-a's 4: best-fit packs into gpu-b.
        assert policy.select_pool(cluster, llm_task()).name == "gpu-b"

    def test_falls_back_when_tightest_full(self):
        cluster = two_llm_pool_cluster()
        policy = BestFitPlacement()
        for _ in range(4):
            cluster.pool("gpu-b").assign(llm_task(), 0.0)
        assert policy.select_pool(cluster, llm_task()).name == "gpu-a"


class TestPoolAffinity:
    def test_prefers_named_pool(self):
        cluster = two_llm_pool_cluster()
        policy = PoolAffinityPlacement(lambda task: "gpu-b")
        assert policy.select_pool(cluster, llm_task()).name == "gpu-b"

    def test_falls_back_when_preferred_full(self):
        cluster = two_llm_pool_cluster()
        policy = PoolAffinityPlacement(lambda task: "gpu-b")
        for _ in range(4):
            cluster.pool("gpu-b").assign(llm_task(), 0.0)
        assert policy.select_pool(cluster, llm_task()).name == "gpu-a"

    def test_wrong_type_preference_ignored(self):
        cluster = two_llm_pool_cluster()
        policy = PoolAffinityPlacement(lambda task: "cpu")
        assert policy.select_pool(cluster, llm_task()).name == "gpu-a"

    def test_no_preference_uses_fallback(self):
        cluster = two_llm_pool_cluster()
        policy = PoolAffinityPlacement(lambda task: None)
        assert policy.select_pool(cluster, regular_task()).name == "cpu"

    def test_unknown_pool_name_falls_back(self):
        cluster = two_llm_pool_cluster()
        policy = PoolAffinityPlacement(lambda task: "h800-does-not-exist")
        assert policy.select_pool(cluster, llm_task()).name == "gpu-a"


class TestPrefillDecode:
    def disaggregated_cluster(self):
        return Cluster(
            pools=[
                PoolSpec("cpu", TaskType.REGULAR, 4),
                PoolSpec("pre", TaskType.LLM, 1, max_batch_size=4, role="prefill"),
                PoolSpec("dec", TaskType.LLM, 1, max_batch_size=4, role="decode"),
            ]
        )

    def token_llm_task(self, work=2.0, prefill=0.5):
        task = llm_task(work=work)
        task.set_token_model(prompt_tokens=64, output_tokens=32, prefill_work=prefill)
        return task

    def test_fresh_request_routes_to_prefill_pool(self):
        policy = PrefillDecodePlacement()
        pool = policy.select_pool(self.disaggregated_cluster(), self.token_llm_task())
        assert pool.name == "pre"

    def test_prefill_complete_request_routes_to_decode_pool(self):
        policy = PrefillDecodePlacement()
        task = self.token_llm_task(prefill=0.5)
        task.progress = 0.6  # past the prefill boundary
        pool = policy.select_pool(self.disaggregated_cluster(), task)
        assert pool.name == "dec"

    def test_work_conserving_falls_back_to_opposite_role(self):
        cluster = self.disaggregated_cluster()
        policy = PrefillDecodePlacement()
        for _ in range(4):
            cluster.pool("pre").assign(self.token_llm_task(), 0.0)
        # Prefill pool full: a fresh request still lands (on the decode pool)
        # rather than going unplaced.
        assert policy.select_pool(cluster, self.token_llm_task()).name == "dec"

    def test_non_token_task_uses_first_fit(self):
        policy = PrefillDecodePlacement()
        cluster = self.disaggregated_cluster()
        assert policy.select_pool(cluster, llm_task()).name == "pre"
        assert policy.select_pool(cluster, regular_task()).name == "cpu"

    def test_registered_in_factory(self):
        assert "prefill_decode" in available_placement_policies()
        assert isinstance(
            create_placement_policy("prefill_decode"), PrefillDecodePlacement
        )


class TestEngineIntegration:
    SPEC = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=12, arrival_rate=1.5, seed=13)

    def run_with(self, placement, cluster):
        jobs = generate_workload(self.SPEC)
        engine = SimulationEngine(jobs, FcfsScheduler(), cluster=cluster, placement=placement)
        return engine.run()

    def test_default_placement_is_greedy(self):
        implicit = self.run_with(None, Cluster(ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)))
        explicit = self.run_with(
            GreedyFirstFitPlacement(),
            Cluster(ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)),
        )
        assert implicit.job_completion_times == explicit.job_completion_times
        assert implicit.makespan == explicit.makespan

    @pytest.mark.parametrize("policy_name", ["greedy", "best_fit"])
    def test_policies_complete_on_heterogeneous_cluster(self, policy_name):
        metrics = self.run_with(create_placement_policy(policy_name), two_llm_pool_cluster())
        assert len(metrics.job_completion_times) == self.SPEC.num_jobs
        # Multi-pool runs report per-pool utilization by name.
        assert set(metrics.pool_utilization) == {"cpu", "gpu-a", "gpu-b"}

    def test_affinity_routes_on_heterogeneous_cluster(self):
        metrics = self.run_with(
            PoolAffinityPlacement(lambda task: "gpu-b"), two_llm_pool_cluster()
        )
        assert len(metrics.job_completion_times) == self.SPEC.num_jobs
        assert metrics.pool_utilization["gpu-b"] >= metrics.pool_utilization["gpu-a"]
