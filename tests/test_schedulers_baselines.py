"""Tests for the baseline scheduling policies."""

import pytest

from repro.dag.job import Job
from repro.dag.stage import Stage, StageSpec, StageType
from repro.schedulers.argus import ArgusScheduler
from repro.schedulers.base import SchedulingContext
from repro.schedulers.carbyne import CarbyneScheduler
from repro.schedulers.decima import DecimaPolicy, DecimaScheduler, train_decima
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.registry import available_schedulers, create_scheduler
from repro.schedulers.sjf import SjfScheduler
from repro.schedulers.srtf import SrtfScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, generate_workload


def make_job(job_id, application, arrival, llm_work, num_llm_tasks=1, reg_work=0.5):
    job = Job(job_id, application, arrival)
    job.add_stage(
        Stage(StageSpec("llm", StageType.LLM), job_id, [llm_work] * num_llm_tasks)
    )
    job.add_stage(Stage(StageSpec("reg", StageType.REGULAR), job_id, [reg_work]))
    job.add_dependency("llm", "reg")
    job.finalize()
    return job


def context_for(jobs, time=0.0):
    return SchedulingContext(time=time, jobs=list(jobs), free_regular_slots=4, free_llm_slots=8)


PRIORS = ApplicationPriors({"short_app": 2.0, "long_app": 20.0})


class TestFcfs:
    def test_orders_by_arrival(self):
        late = make_job("late", "short_app", 5.0, 1.0)
        early = make_job("early", "long_app", 1.0, 1.0)
        decision = FcfsScheduler().schedule(context_for([late, early]))
        assert decision.llm_tasks[0].job_id == "early"

    def test_empty_context(self):
        decision = FcfsScheduler().schedule(context_for([]))
        assert decision.total_tasks == 0


class TestFair:
    def test_round_robins_across_jobs(self):
        job_a = make_job("a", "short_app", 0.0, 1.0, num_llm_tasks=3)
        job_b = make_job("b", "short_app", 1.0, 1.0, num_llm_tasks=3)
        decision = FairScheduler().schedule(context_for([job_a, job_b]))
        order = [t.job_id for t in decision.llm_tasks]
        assert order[:4] == ["a", "b", "a", "b"]


class TestSjf:
    def test_prefers_short_application(self):
        long_job = make_job("long", "long_app", 0.0, 10.0)
        short_job = make_job("short", "short_app", 1.0, 1.0)
        decision = SjfScheduler(PRIORS).schedule(context_for([long_job, short_job]))
        assert decision.llm_tasks[0].job_id == "short"

    def test_is_blind_to_actual_duration_within_application(self):
        """Two jobs of the same app rank by arrival even if true work differs."""
        slow = make_job("slow", "short_app", 0.0, 50.0)
        fast = make_job("fast", "short_app", 1.0, 0.1)
        decision = SjfScheduler(PRIORS).schedule(context_for([slow, fast]))
        assert decision.llm_tasks[0].job_id == "slow"


class TestSrtf:
    def test_progress_changes_priority(self):
        job_a = make_job("a", "long_app", 0.0, 10.0)
        job_b = make_job("b", "short_app", 0.0, 1.0)
        scheduler = SrtfScheduler(priors=PRIORS)
        first = scheduler.schedule(context_for([job_a, job_b]))
        assert first.llm_tasks[0].job_id == "b"
        # After job_a observes 19.5s of completed work its remaining estimate
        # (0.5s) drops below job_b's 2.0s estimate.
        stage = job_a.stage("llm")
        stage.mark_running()
        stage.tasks[0].mark_running(0.0, "e")
        stage.tasks[0].mark_finished(19.5)
        job_a.notify_stage_finished("llm", 19.5)
        second = scheduler.schedule(context_for([job_a, job_b], time=19.5))
        assert second.regular_tasks[0].job_id == "a"

    def test_requires_estimator_or_priors(self):
        with pytest.raises(ValueError):
            SrtfScheduler()

    def test_custom_estimator_used(self):
        job_a = make_job("a", "long_app", 0.0, 10.0)
        job_b = make_job("b", "short_app", 0.0, 1.0)
        scheduler = SrtfScheduler(remaining_estimator=lambda job, ctx: {"a": 1.0, "b": 5.0}[job.job_id])
        decision = scheduler.schedule(context_for([job_a, job_b]))
        assert decision.llm_tasks[0].job_id == "a"


class TestArgus:
    def test_prefers_deeper_stages(self):
        """A job whose schedulable stage is deeper in the DAG goes first."""
        shallow = make_job("shallow", "short_app", 0.0, 1.0)
        deep = make_job("deep", "short_app", 0.0, 1.0)
        # Advance `deep` so its regular (depth-1) stage is schedulable.
        stage = deep.stage("llm")
        stage.mark_running()
        stage.tasks[0].mark_running(0.0, "e")
        stage.tasks[0].mark_finished(1.0)
        deep.notify_stage_finished("llm", 1.0)
        decision = ArgusScheduler().schedule(context_for([shallow, deep], time=1.0))
        assert decision.regular_tasks[0].job_id == "deep"


class TestCarbyne:
    def test_primary_share_follows_remaining_time(self):
        long_job = make_job("long", "long_app", 0.0, 10.0)
        short_job = make_job("short", "short_app", 0.0, 1.0)
        decision = CarbyneScheduler(PRIORS).schedule(context_for([long_job, short_job]))
        assert decision.llm_tasks[0].job_id == "short"

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            CarbyneScheduler(PRIORS, primary_fraction=0.0)


class TestDecima:
    def test_schedules_single_stage_at_a_time(self):
        job_a = make_job("a", "short_app", 0.0, 1.0, num_llm_tasks=2)
        job_b = make_job("b", "long_app", 0.0, 5.0, num_llm_tasks=2)
        decision = DecimaScheduler(PRIORS).schedule(context_for([job_a, job_b]))
        scheduled_stages = {(t.job_id, t.stage_id) for t in decision.llm_tasks + decision.regular_tasks}
        assert len(scheduled_stages) == 1

    def test_empty_context(self):
        decision = DecimaScheduler(PRIORS).schedule(context_for([]))
        assert decision.total_tasks == 0

    def test_policy_weight_validation(self):
        with pytest.raises(ValueError):
            DecimaPolicy(weights=(1.0, 2.0))

    def test_cem_training_improves_or_matches_default(self):
        """Train on a tiny synthetic evaluation function and check the API."""
        target = (-1.0, 0.5, -0.5, 0.3, 0.2, 0.0)

        def evaluate(policy):
            return float(sum((w - t) ** 2 for w, t in zip(policy.weights, target, strict=False)))

        trained = train_decima(evaluate, iterations=5, population=12, seed=0)
        assert evaluate(trained) <= evaluate(DecimaPolicy())

    def test_train_decima_validation(self):
        with pytest.raises(ValueError):
            train_decima(lambda p: 0.0, iterations=0)
        with pytest.raises(ValueError):
            train_decima(lambda p: 0.0, elite_fraction=0.0)


class TestRegistry:
    def test_available_names(self):
        names = available_schedulers()
        for expected in ["fcfs", "sjf", "fair", "argus", "decima", "carbyne", "llmsched"]:
            assert expected in names

    def test_create_simple_schedulers(self):
        assert create_scheduler("fcfs").name == "fcfs"
        assert create_scheduler("fair").name == "fair"
        assert create_scheduler("sjf", priors=PRIORS).name == "sjf"
        assert create_scheduler("argus").name == "argus"

    def test_priors_required(self):
        with pytest.raises(ValueError):
            create_scheduler("sjf")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            create_scheduler("mystery")


@pytest.mark.parametrize("name", ["fcfs", "fair", "sjf", "srtf", "argus", "decima", "carbyne"])
class TestBaselinesEndToEnd:
    def test_runs_small_mixed_workload(self, name):
        """Every baseline must drive a small workload to completion."""
        spec = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=18, arrival_rate=1.2, seed=11)
        jobs = generate_workload(spec)
        priors = ApplicationPriors({app: 10.0 for app in {j.application for j in jobs}})
        scheduler = create_scheduler(name, priors=priors)
        cluster = Cluster(ClusterConfig(num_regular_executors=6, num_llm_executors=3, max_batch_size=8))
        metrics = SimulationEngine(jobs, scheduler, cluster=cluster, workload_name="mixed").run()
        assert len(metrics.job_completion_times) == len(jobs)
        assert metrics.average_jct > 0
