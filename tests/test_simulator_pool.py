"""Tests for ExecutorPool: capacity accounting, heterogeneity, elasticity."""

import pytest

from repro.dag.task import Task, TaskType
from repro.simulator.executor import LLMExecutor
from repro.simulator.pool import ExecutorPool, PoolSpec


def regular_task(work=1.0):
    return Task(job_id="j", stage_id="s", task_type=TaskType.REGULAR, work=work)


def llm_task(work=1.0):
    return Task(job_id="j", stage_id="s", task_type=TaskType.LLM, work=work)


def recount_free_slots(pool):
    """Ground-truth free slots: recomputed from scratch for the invariant."""
    total = 0
    for executor in pool.executors:
        if not pool.is_active(executor.executor_id):
            continue
        if pool.spec.task_type is TaskType.REGULAR:
            total += 1 if executor.is_idle else 0
        else:
            total += executor.free_slots
    return total


class TestPoolSpec:
    def test_defaults_valid(self):
        spec = PoolSpec("cpu", TaskType.REGULAR, 4)
        assert spec.slots_per_executor == 1
        assert spec.prefix == "cpu"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"num_executors": 0},
            {"max_batch_size": 0},
            {"latency_slope": -0.1},
            {"speed_factor": 0.0},
            {"min_executors": -1},
            {"min_executors": 4, "max_executors": 2},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        base = dict(name="p", task_type=TaskType.LLM, num_executors=2)
        base.update(kwargs)
        with pytest.raises(ValueError):
            PoolSpec(**base)

    def test_regular_pool_rejects_batching(self):
        with pytest.raises(ValueError):
            PoolSpec("cpu", TaskType.REGULAR, 2, max_batch_size=4)


class TestAssignFinish:
    def test_regular_lowest_index_first(self):
        pool = ExecutorPool(PoolSpec("cpu", TaskType.REGULAR, 3))
        assert pool.assign(regular_task(), 0.0) == "cpu-0"
        assert pool.assign(regular_task(), 0.0) == "cpu-1"
        assert pool.free_slots == 1

    def test_llm_least_loaded(self):
        pool = ExecutorPool(PoolSpec("gpu", TaskType.LLM, 2, max_batch_size=2))
        first = pool.assign(llm_task(), 0.0)
        second = pool.assign(llm_task(), 0.0)
        assert {first, second} == {"gpu-0", "gpu-1"}

    def test_wrong_task_type_rejected(self):
        pool = ExecutorPool(PoolSpec("cpu", TaskType.REGULAR, 1))
        with pytest.raises(ValueError):
            pool.assign(llm_task(), 0.0)

    def test_finish_returns_capacity(self):
        pool = ExecutorPool(PoolSpec("cpu", TaskType.REGULAR, 1))
        pool.assign(regular_task(work=2.0), 0.0)
        assert pool.free_slots == 0
        executor = pool.executors[0]
        pool.finish_regular_task(executor, 2.0)
        assert pool.free_slots == 1
        assert pool.assign(regular_task(), 2.0) == "cpu-0"

    def test_free_slot_invariant_through_churn(self):
        pool = ExecutorPool(PoolSpec("gpu", TaskType.LLM, 2, max_batch_size=3))
        placed = []
        for i in range(5):
            task = llm_task(work=1.0 + i)
            assert pool.assign(task, 0.0) is not None
            placed.append(task)
            assert pool.free_slots == recount_free_slots(pool)
        for executor in pool.executors:
            executor.advance_to(10.0)
        for task in placed:
            executor = next(e for e in pool.executors if e.executor_id == task.executor_id)
            pool.finish_llm_task(executor, task, 10.0, eps=1e-6)
            assert pool.free_slots == recount_free_slots(pool)


class TestSpeedFactor:
    def test_regular_speed_halves_duration(self):
        pool = ExecutorPool(PoolSpec("fast", TaskType.REGULAR, 1, speed_factor=2.0))
        pool.assign(regular_task(work=4.0), 0.0)
        assert pool.executors[0].completion_time() == pytest.approx(2.0)

    def test_llm_speed_scales_progress(self):
        slow = ExecutorPool(PoolSpec("a", TaskType.LLM, 1, max_batch_size=1, latency_slope=0.0))
        fast = ExecutorPool(
            PoolSpec("b", TaskType.LLM, 1, max_batch_size=1, latency_slope=0.0, speed_factor=2.0)
        )
        t1, t2 = llm_task(work=4.0), llm_task(work=4.0)
        slow.assign(t1, 0.0)
        fast.assign(t2, 0.0)
        slow.executors[0].advance_to(1.0)
        fast.executors[0].advance_to(1.0)
        assert t1.progress == pytest.approx(1.0)
        assert t2.progress == pytest.approx(2.0)


class TestElasticity:
    def test_scale_up_appends_fresh_ids(self):
        pool = ExecutorPool(PoolSpec("cpu", TaskType.REGULAR, 2, max_executors=4))
        assert pool.scale_up(3) == 2  # capped by max_executors
        assert [e.executor_id for e in pool.executors] == [
            "cpu-0",
            "cpu-1",
            "cpu-2",
            "cpu-3",
        ]
        assert pool.free_slots == 4

    def test_scale_down_idle_immediate(self):
        pool = ExecutorPool(PoolSpec("cpu", TaskType.REGULAR, 3, min_executors=1))
        assert pool.scale_down(5) == 2  # floor at min_executors
        assert pool.num_active_executors == 1
        assert pool.free_slots == 1
        # Retired executors are never assigned.
        assert pool.assign(regular_task(), 0.0) == "cpu-0"
        assert pool.assign(regular_task(), 0.0) is None

    def test_scale_down_busy_drains(self):
        pool = ExecutorPool(PoolSpec("cpu", TaskType.REGULAR, 2, min_executors=0))
        t0, t1 = regular_task(work=1.0), regular_task(work=5.0)
        pool.assign(t0, 0.0)
        pool.assign(t1, 0.0)
        assert pool.scale_down(1) == 1  # both busy: one drains
        assert pool.free_slots == 0
        drained = pool.executors[1]  # high-index victim
        assert not pool.is_active(drained.executor_id)
        pool.finish_regular_task(drained, 5.0)
        # Finishing on a draining executor retires it, capacity not returned.
        assert pool.free_slots == 0
        assert pool.num_active_executors == 1

    def test_scale_up_unretires_before_creating(self):
        pool = ExecutorPool(PoolSpec("cpu", TaskType.REGULAR, 4, min_executors=1))
        pool.scale_down(3)  # retires 3 idle executors
        assert pool.num_active_executors == 1
        assert pool.scale_up(2) == 2
        # Recycled, not created: the executor list is bounded by the peak.
        assert len(pool.executors) == 4
        assert pool.num_active_executors == 3
        assert pool.free_slots == 3
        # Reactivated executors are assignable again.
        assert pool.assign(regular_task(), 0.0) is not None
        assert pool.assign(regular_task(), 0.0) is not None
        assert pool.assign(regular_task(), 0.0) is not None
        assert pool.assign(regular_task(), 0.0) is None

    def test_cyclic_scaling_does_not_grow_executor_list(self):
        pool = ExecutorPool(PoolSpec("gpu", TaskType.LLM, 1, max_batch_size=2, min_executors=1, max_executors=6))
        for _ in range(10):  # ten "days" of diurnal up/down
            pool.scale_up(5)
            pool.scale_down(5)
        assert len(pool.executors) == 6  # bounded by the historical peak
        assert pool.num_active_executors == 1
        assert pool.free_slots == 2

    def test_scale_up_undrains_before_creating(self):
        pool = ExecutorPool(PoolSpec("cpu", TaskType.REGULAR, 2, min_executors=0))
        pool.assign(regular_task(work=5.0), 0.0)
        pool.assign(regular_task(work=5.0), 0.0)
        pool.scale_down(1)
        assert pool.scale_up(1) == 1
        assert len(pool.executors) == 2  # un-drained, nothing new created
        assert pool.num_active_executors == 2

    def test_llm_scale_down_removes_open_slots(self):
        pool = ExecutorPool(PoolSpec("gpu", TaskType.LLM, 2, max_batch_size=4, min_executors=0))
        task = llm_task(work=10.0)
        pool.assign(task, 0.0)
        assert pool.free_slots == 7
        pool.scale_down(1)  # retires the idle executor outright
        assert pool.free_slots == 3
        pool.scale_down(1)  # drains the busy one: its 3 open slots vanish
        assert pool.free_slots == 0
        executor = pool.executors[pool._local_index[task.executor_id]]
        executor.advance_to(20.0)
        pool.finish_llm_task(executor, task, 20.0)
        assert pool.num_active_executors == 0
        assert pool.free_slots == 0

    def test_occupancy(self):
        pool = ExecutorPool(PoolSpec("cpu", TaskType.REGULAR, 4))
        assert pool.occupancy == 0.0
        pool.assign(regular_task(), 0.0)
        assert pool.occupancy == pytest.approx(0.25)
