"""Tests for the asynchronous scheduling subsystem (decision latency,
stale snapshots, conflict resolution, pipelining, stale-view routing)."""

import json
from pathlib import Path

import pytest

from repro.core.calibration import BatchingAwareCalibrator
from repro.core.llmsched import LLMSchedConfig, LLMSchedScheduler
from repro.core.profiler import BayesianProfiler
from repro.dag.task import TaskState, TaskType
from repro.schedulers.base import (
    PreemptionDirective,
    SchedulingContext,
    SchedulingDecision,
)
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.preemptive import PreemptiveSrtfScheduler
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.registry import available_schedulers, create_scheduler
from repro.simulator.async_sched import (
    AsyncConfig,
    AsyncSchedulerBackend,
    FixedLatency,
    PerJobLinearLatency,
    SampledLatency,
    create_latency_model,
)
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationConfig, SimulationEngine
from repro.simulator.federation import (
    FederatedCluster,
    FederatedSimulationEngine,
    LeastLoadedRouter,
    StaleLeastLoadedRouter,
    create_job_router,
)
from repro.simulator.latency import DecodingLatencyProfile
from repro.workloads.arrivals import PoissonProcess, open_loop_jobs
from repro.workloads.mixtures import (
    WorkloadSpec,
    WorkloadType,
    default_applications,
    generate_workload,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

SPEC = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=20, arrival_rate=1.2, seed=7)
CLUSTER = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)


@pytest.fixture(scope="module")
def applications():
    return default_applications()


@pytest.fixture(scope="module")
def priors(applications):
    return ApplicationPriors.from_applications(applications.values(), n_samples=40, seed=9)


@pytest.fixture(scope="module")
def profiler(applications):
    profiler = BayesianProfiler()
    profiler.fit(applications.values(), n_profile_jobs=40, seed=9)
    return profiler


def make_scheduler(name, priors, profiler):
    if name == "llmsched":
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.06))
        return LLMSchedScheduler(profiler, config=LLMSchedConfig(), calibrator=calibrator)
    return create_scheduler(name, priors=priors)


def run_async(scheduler, async_config, applications, spec=SPEC, cluster=CLUSTER):
    jobs = generate_workload(spec, applications=applications)
    engine = SimulationEngine(
        jobs,
        scheduler,
        cluster=Cluster(cluster),
        workload_name=spec.workload_type.value,
        async_backend=AsyncSchedulerBackend(async_config) if async_config else None,
    )
    return engine.run()


# --------------------------------------------------------------------------- #
# Latency models and configuration
# --------------------------------------------------------------------------- #
class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(1.5)
        assert model.latency(SchedulingContext(time=0.0, jobs=[])) == 1.5
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_per_job_linear(self, applications):
        jobs = generate_workload(SPEC, applications=applications)[:5]
        model = PerJobLinearLatency(base=0.5, per_job=0.1)
        context = SchedulingContext(time=0.0, jobs=jobs)
        assert model.latency(context) == pytest.approx(0.5 + 0.1 * 5)
        with pytest.raises(ValueError):
            PerJobLinearLatency(per_job=-0.1)

    def test_sampled_is_deterministic(self):
        context = SchedulingContext(time=0.0, jobs=[])
        first = SampledLatency([0.1, 0.5, 2.0], seed=3)
        second = SampledLatency([0.1, 0.5, 2.0], seed=3)
        draws = [first.latency(context) for _ in range(20)]
        assert draws == [second.latency(context) for _ in range(20)]
        assert set(draws) <= {0.1, 0.5, 2.0}
        first.reset()
        assert [first.latency(context) for _ in range(20)] == draws
        with pytest.raises(ValueError):
            SampledLatency([])
        with pytest.raises(ValueError):
            SampledLatency([-0.5])

    def test_factory_coerces_numbers(self):
        assert isinstance(create_latency_model(2.0), FixedLatency)
        model = PerJobLinearLatency()
        assert create_latency_model(model) is model

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AsyncConfig(latency=-1.0)
        with pytest.raises(ValueError):
            AsyncConfig(max_in_flight=0)
        assert AsyncConfig(pipelined=True, max_in_flight=3).depth == 3
        assert AsyncConfig(pipelined=False, max_in_flight=3).depth == 1


# --------------------------------------------------------------------------- #
# Golden identity at latency zero
# --------------------------------------------------------------------------- #
class TestLatencyZeroIdentity:
    """The async backend at latency 0 (non-pipelined) must be bit-identical
    to the synchronous engine — verified against the committed golden traces
    for every registered scheduler."""

    @pytest.mark.parametrize("name", available_schedulers(include_llmsched=True))
    def test_matches_golden_trace(self, name, priors, profiler, applications):
        golden_path = GOLDEN_DIR / f"{name}.json"
        assert golden_path.exists(), f"missing golden trace {golden_path}"
        golden = json.loads(golden_path.read_text())
        metrics = run_async(
            make_scheduler(name, priors, profiler),
            AsyncConfig(latency=0.0, pipelined=False),
            applications,
        )
        assert dict(sorted(metrics.job_completion_times.items())) == golden["jct"]
        assert metrics.makespan == golden["makespan"]
        assert metrics.num_tasks_executed == golden["num_tasks_executed"]
        # Latency 0 short-circuits: no decision ever goes in flight.
        assert metrics.num_async_decisions == 0
        assert metrics.num_stale_placements == 0
        assert metrics.num_placement_conflicts == 0


# --------------------------------------------------------------------------- #
# Latency degradation and staleness accounting
# --------------------------------------------------------------------------- #
class TestDecisionLatency:
    def test_latency_delays_completion(self, applications):
        sync = run_async(FcfsScheduler(), None, applications)
        slow = run_async(FcfsScheduler(), AsyncConfig(latency=2.0), applications)
        assert slow.average_jct > sync.average_jct
        assert slow.makespan > sync.makespan
        assert slow.num_async_decisions > 0
        assert slow.decision_latency.mean == pytest.approx(2.0)
        # Decisions apply no earlier than their latency window.
        assert slow.decision_staleness.mean >= 2.0 - 1e-9

    def test_all_work_conserved_under_latency(self, applications):
        sync = run_async(FcfsScheduler(), None, applications)
        for latency in (0.5, 2.0, 5.0):
            metrics = run_async(FcfsScheduler(), AsyncConfig(latency=latency), applications)
            assert set(metrics.job_completion_times) == set(sync.job_completion_times)
            assert metrics.num_tasks_executed == sync.num_tasks_executed

    def test_degradation_grows_with_latency(self, applications):
        jcts = [
            run_async(FcfsScheduler(), AsyncConfig(latency=latency), applications).average_jct
            for latency in (0.0, 1.0, 4.0)
        ]
        assert jcts == sorted(jcts)
        assert jcts[-1] > jcts[0]

    def test_async_runs_are_deterministic(self, applications):
        first = run_async(FcfsScheduler(), AsyncConfig(latency=1.0), applications)
        second = run_async(FcfsScheduler(), AsyncConfig(latency=1.0), applications)
        assert first.job_completion_times == second.job_completion_times
        assert first.makespan == second.makespan

    def test_sampled_latency_run_is_deterministic(self, applications):
        config = AsyncConfig(latency=SampledLatency([0.2, 1.0, 3.0], seed=11))
        first = run_async(FcfsScheduler(), config, applications)
        # The backend resets the model at construction, so reusing the same
        # config replays the identical draws.
        second = run_async(FcfsScheduler(), config, applications)
        assert first.job_completion_times == second.job_completion_times

    def test_per_job_linear_latency_runs(self, applications):
        metrics = run_async(
            FcfsScheduler(),
            AsyncConfig(latency=PerJobLinearLatency(base=0.1, per_job=0.05)),
            applications,
        )
        assert len(metrics.job_completion_times) == SPEC.num_jobs
        assert metrics.num_async_decisions > 0
        assert metrics.decision_latency.mean > 0.1


class TestPipelinedMode:
    def test_pipelining_beats_blocking_at_same_latency(self, applications):
        blocking = run_async(FcfsScheduler(), AsyncConfig(latency=1.0), applications)
        pipelined = run_async(
            FcfsScheduler(),
            AsyncConfig(latency=1.0, pipelined=True, max_in_flight=3),
            applications,
        )
        # Overlapping decisions recover throughput lost to the latency
        # window; the price is conflicts between overlapping decisions.
        assert pipelined.average_jct < blocking.average_jct
        assert pipelined.num_stale_placements > 0

    def test_pipelined_completes_all_jobs(self, applications):
        metrics = run_async(
            FcfsScheduler(),
            AsyncConfig(latency=2.0, pipelined=True, max_in_flight=4),
            applications,
        )
        assert len(metrics.job_completion_times) == SPEC.num_jobs

    def test_preemptive_scheduler_under_latency(self, priors, applications):
        metrics = run_async(
            PreemptiveSrtfScheduler(priors=priors),
            AsyncConfig(latency=1.0, pipelined=True, max_in_flight=2),
            applications,
        )
        assert len(metrics.job_completion_times) == SPEC.num_jobs


# --------------------------------------------------------------------------- #
# Conflict resolution against fabricated stale decisions
# --------------------------------------------------------------------------- #
class TestConflictResolution:
    def _engine_with_context(self, applications, snapshot_policy="cow"):
        jobs = generate_workload(SPEC, applications=applications)
        engine = SimulationEngine(
            jobs,
            FcfsScheduler(),
            cluster=Cluster(CLUSTER),
            config=SimulationConfig(snapshot_policy=snapshot_policy),
            async_backend=AsyncSchedulerBackend(AsyncConfig(latency=1.0)),
        )
        # Drive to the first instant with schedulable work.
        while not engine._active_jobs:
            assert engine.step()
        return engine

    def test_stale_preemption_is_noop(self, applications):
        engine = self._engine_with_context(applications)
        context = engine._build_context()
        snapshot = context.snapshot()
        victim = snapshot.schedulable_tasks()[0]  # PENDING, never ran
        from repro.simulator.async_sched import InFlightDecision

        inflight = InFlightDecision(
            requested_at=engine.current_time,
            apply_at=engine.current_time,
            decision=SchedulingDecision(
                preemptions=[PreemptionDirective(task=victim)]
            ),
        )
        engine._apply_async_decision(inflight)
        assert engine.metrics.num_stale_preemptions == 1
        assert engine.metrics.num_preemptions == 0

    def test_stale_placement_of_finished_job_is_dropped(self, applications):
        engine = self._engine_with_context(applications)
        snapshot = engine._build_context().snapshot()
        task = snapshot.schedulable_tasks()[0]
        # Simulate the job leaving the cluster between snapshot and apply.
        engine._active_jobs.pop(task.job_id)
        from repro.simulator.async_sched import InFlightDecision

        decision = SchedulingDecision.from_tasks([task])
        inflight = InFlightDecision(
            requested_at=engine.current_time,
            apply_at=engine.current_time,
            decision=decision,
            snapshot_free_regular=snapshot.free_regular_slots,
            snapshot_free_llm=snapshot.free_llm_slots,
        )
        engine._apply_async_decision(inflight)
        assert engine.metrics.num_stale_placements == 1

    def test_duplicate_entries_within_one_decision_not_metered(self, applications):
        engine = self._engine_with_context(applications)
        snapshot = engine._build_context().snapshot()
        task = snapshot.schedulable_tasks()[0]
        from repro.simulator.async_sched import InFlightDecision

        # The same task listed three times (allowed by the scheduler
        # contract): one placement, the repeats skipped silently — not
        # counted as stale placements, exactly like the sync path.
        inflight = InFlightDecision(
            requested_at=engine.current_time,
            apply_at=engine.current_time,
            decision=SchedulingDecision.from_tasks([task, task, task]),
            snapshot_free_regular=snapshot.free_regular_slots,
            snapshot_free_llm=snapshot.free_llm_slots,
        )
        engine._apply_async_decision(inflight)
        assert engine.metrics.num_stale_placements == 0
        assert engine.metrics.num_placement_conflicts == 0
        assert engine._resolve_live_task(task).state is TaskState.RUNNING

    def test_backends_from_one_config_draw_independent_latencies(self):
        config = AsyncConfig(latency=SampledLatency([0.1, 0.5, 2.0], seed=7))
        first = AsyncSchedulerBackend(config)
        second = AsyncSchedulerBackend(config)
        # Per-shard backends built from one shared config (the federated
        # factory pattern) must not share RNG state.
        assert first.model is not second.model
        context = SchedulingContext(time=0.0, jobs=[])
        draws = [first.model.latency(context) for _ in range(10)]
        assert draws == [second.model.latency(context) for _ in range(10)]

    def test_resolve_live_task_maps_snapshot_copies(self, applications):
        # Deep-copy oracle: every snapshot task is a copy, and resolution
        # maps it back onto the right live identity.
        engine = self._engine_with_context(applications, snapshot_policy="deepcopy")
        snapshot = engine._build_context().snapshot()
        for task in snapshot.schedulable_tasks():
            live = engine._resolve_live_task(task)
            assert live is not None
            assert live is not task  # a copy was mapped back ...
            assert live.key() == task.key()  # ... onto the right identity
            assert live.state is TaskState.PENDING

    def test_resolve_live_task_on_cow_snapshot(self, applications):
        # COW view: jobs untouched since the snapshot share live objects, so
        # resolution is the identity — until the engine mutates the job, at
        # which point the snapshot keeps a private clone and resolution maps
        # the clone's tasks back by key exactly like the deep-copy path.
        engine = self._engine_with_context(applications, snapshot_policy="cow")
        snapshot = engine._build_context().snapshot()
        tasks_before = snapshot.schedulable_tasks()
        assert tasks_before
        for task in tasks_before:
            live = engine._resolve_live_task(task)
            assert live is task  # unmutated job: the view shares live objects
        # Mutate the live world while the snapshot is alive: placed tasks'
        # jobs get copied out, so re-reading the snapshot yields clones that
        # still resolve to the correct live identities.
        for _ in range(5):
            if not engine.step():
                break
        for task in snapshot.schedulable_tasks():
            live = engine._resolve_live_task(task)
            if live is None:
                continue  # job finished and left the cluster: stale by design
            assert live.key() == task.key()


# --------------------------------------------------------------------------- #
# Open-loop and federated integration
# --------------------------------------------------------------------------- #
class TestFederatedAsync:
    CLUSTER = ClusterConfig(num_regular_executors=2, num_llm_executors=1, max_batch_size=4)

    def _stream(self):
        return open_loop_jobs(PoissonProcess(rate=2.0, seed=5), seed=5, max_jobs=60)

    def test_per_shard_backends(self):
        fleet = FederatedCluster(
            [(f"s{i}", Cluster(self.CLUSTER)) for i in range(2)],
            router=LeastLoadedRouter(),
        )
        engine = FederatedSimulationEngine(
            self._stream(),
            FcfsScheduler,
            fleet,
            async_backend_factory=lambda: AsyncSchedulerBackend(AsyncConfig(latency=1.0)),
        )
        metrics = engine.run()
        assert len(metrics.job_completion_times) == 60
        assert sum(m.num_async_decisions for m in metrics.shards.values()) > 0

    def test_async_one_shard_latency_zero_identity(self):
        single = SimulationEngine(
            self._stream(), FcfsScheduler(), cluster=Cluster(self.CLUSTER)
        ).run()
        fleet = FederatedCluster([("s0", Cluster(self.CLUSTER))])
        federated = FederatedSimulationEngine(
            self._stream(),
            FcfsScheduler,
            fleet,
            async_backend_factory=lambda: AsyncSchedulerBackend(AsyncConfig(latency=0.0)),
        ).run()
        assert federated.job_completion_times == single.job_completion_times

    def _run_sampled_fleet(self, num_shards=2):
        config = AsyncConfig(latency=SampledLatency([0.1, 0.4, 1.5], seed=13))
        fleet = FederatedCluster(
            [(f"s{i}", Cluster(self.CLUSTER)) for i in range(num_shards)],
            router=LeastLoadedRouter(),
        )
        engine = FederatedSimulationEngine(
            self._stream(),
            FcfsScheduler,
            fleet,
            async_backend_factory=lambda: AsyncSchedulerBackend(config),
        )
        metrics = engine.run()
        backends = [shard.engine.async_backend for shard in engine.federation.shards]
        return metrics, backends

    def test_sampled_latency_shards_do_not_share_rng_state(self):
        # The factory hands every shard the *same* AsyncConfig; each backend
        # must still own a private SampledLatency (private RNG): shared
        # state would make shard latencies depend on the order in which the
        # other shards happened to draw, breaking shard-count determinism.
        _, backends = self._run_sampled_fleet()
        models = [backend.model for backend in backends]
        assert len({id(model) for model in models}) == len(models)
        rngs = [model._rng for model in models]
        assert len({id(rng) for rng in rngs}) == len(rngs)

    def test_sampled_latency_federated_rerun_is_bit_identical(self):
        first, _ = self._run_sampled_fleet()
        second, _ = self._run_sampled_fleet()
        assert first.job_completion_times == second.job_completion_times
        assert first.makespan == second.makespan
        assert {name: m.num_async_decisions for name, m in first.shards.items()} == {
            name: m.num_async_decisions for name, m in second.shards.items()
        }


class TestStaleViewRouting:
    CLUSTER = ClusterConfig(num_regular_executors=2, num_llm_executors=1, max_batch_size=4)

    def _stream(self):
        return open_loop_jobs(PoissonProcess(rate=2.0, seed=5), seed=5, max_jobs=80)

    def _run(self, router):
        fleet = FederatedCluster(
            [(f"s{i}", Cluster(self.CLUSTER)) for i in range(3)], router=router
        )
        return FederatedSimulationEngine(self._stream(), FcfsScheduler, fleet).run()

    def test_factory(self):
        router = create_job_router("stale_least_loaded", view_refresh_interval=60.0)
        assert isinstance(router, StaleLeastLoadedRouter)
        assert router.view_refresh_interval == 60.0
        with pytest.raises(ValueError):
            StaleLeastLoadedRouter(view_refresh_interval=-1.0)

    def test_zero_interval_matches_fresh_least_loaded(self):
        fresh = self._run(LeastLoadedRouter())
        always = self._run(StaleLeastLoadedRouter(view_refresh_interval=0.0))
        assert always.job_completion_times == fresh.job_completion_times

    def test_staleness_hurts_monotonically(self):
        jcts = [
            self._run(StaleLeastLoadedRouter(view_refresh_interval=iv)).average_jct
            for iv in (0.0, 30.0, 120.0)
        ]
        assert jcts == sorted(jcts)
        assert jcts[-1] > jcts[0]

    def test_view_refreshes_at_interval(self):
        router = StaleLeastLoadedRouter(view_refresh_interval=50.0)
        self._run(router)
        assert router.last_refresh_time is not None

    def test_router_reset_between_runs(self):
        router = StaleLeastLoadedRouter(view_refresh_interval=1e9)
        first = self._run(router)
        # Reused router must not carry the stale t=0 view into a new run
        # (the engine resets it); two runs are identical.
        second = self._run(router)
        assert first.job_completion_times == second.job_completion_times
