"""Federation invariants: 1-shard identity, routing, cross-shard migration.

The acceptance bar for the sharding layer:

* a 1-shard :class:`FederatedSimulationEngine` with the hash router
  reproduces the single-cluster golden traces **bit for bit** for every
  registered scheduler (the federated driver is the same event loop, just
  driven from outside),
* routers are deterministic and respect their documented signals,
* cross-shard migration conserves work exactly — no progress lost at the
  checkpoint, none double-counted on resume — and meters its cost exactly
  once per migrated job.
"""

import json
from pathlib import Path

import pytest

from repro.core.calibration import BatchingAwareCalibrator
from repro.core.llmsched import LLMSchedConfig, LLMSchedScheduler
from repro.dag.task import TaskState, TaskType
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.registry import available_schedulers, create_scheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.simulator.federation import (
    FederatedCluster,
    FederatedSimulationEngine,
    HashRouter,
    LeastLoadedRouter,
    MigrationConfig,
    TypeAffinityRouter,
    available_job_routers,
    create_job_router,
)
from repro.simulator.latency import DecodingLatencyProfile
from repro.workloads.arrivals import PoissonProcess, open_loop_jobs
from repro.workloads.mixtures import (
    WorkloadSpec,
    WorkloadType,
    default_applications,
    generate_workload,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Same fixed workload + cluster the golden traces were recorded with.
SPEC = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=20, arrival_rate=1.2, seed=7)
CLUSTER = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)

SCHEDULER_NAMES = available_schedulers(include_llmsched=True)


@pytest.fixture(scope="module")
def applications():
    return default_applications()


@pytest.fixture(scope="module")
def priors(applications):
    return ApplicationPriors.from_applications(applications.values(), n_samples=40, seed=9)


@pytest.fixture(scope="module")
def profiler(applications):
    from repro.core.profiler import BayesianProfiler

    profiler = BayesianProfiler()
    profiler.fit(applications.values(), n_profile_jobs=40, seed=9)
    return profiler


def make_scheduler(name, priors, profiler):
    if name == "llmsched":
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.06))
        return LLMSchedScheduler(profiler, config=LLMSchedConfig(), calibrator=calibrator)
    return create_scheduler(name, priors=priors)


def two_shard_fleet(router=None, config=None):
    config = config or ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)
    return FederatedCluster(
        [("s0", Cluster(config)), ("s1", Cluster(config))],
        router=router or LeastLoadedRouter(),
    )


def stream(seed=5, max_jobs=60, rate=2.0):
    return open_loop_jobs(PoissonProcess(rate=rate, seed=seed), seed=seed, max_jobs=max_jobs)


# --------------------------------------------------------------------------- #
# 1-shard identity: the federated driver is the engine, bit for bit
# --------------------------------------------------------------------------- #
class TestSingleShardIdentity:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_one_shard_matches_golden_trace(self, name, priors, profiler, applications):
        jobs = generate_workload(SPEC, applications=applications)
        fleet = FederatedCluster([("shard-0", Cluster(CLUSTER))], router=HashRouter())
        metrics = FederatedSimulationEngine(
            jobs,
            lambda: make_scheduler(name, priors, profiler),
            fleet,
            workload_name=SPEC.workload_type.value,
        ).run()
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        # Exact comparison on purpose, mirroring test_golden_traces.
        assert dict(sorted(metrics.job_completion_times.items())) == golden["jct"]
        assert metrics.makespan == golden["makespan"]
        assert metrics.num_tasks_executed == golden["num_tasks_executed"]

    def test_one_shard_matches_engine_on_open_loop_stream(self, applications):
        single = SimulationEngine(
            stream(), FcfsScheduler(), cluster=Cluster(CLUSTER)
        ).run()
        fleet = FederatedCluster([("shard-0", Cluster(CLUSTER))])
        federated = FederatedSimulationEngine(stream(), FcfsScheduler, fleet).run()
        assert federated.job_completion_times == single.job_completion_times
        assert federated.makespan == single.makespan


# --------------------------------------------------------------------------- #
# Routers
# --------------------------------------------------------------------------- #
class TestRouters:
    def test_factory_and_names(self):
        assert available_job_routers() == [
            "hash",
            "least_loaded",
            "stale_least_loaded",
            "type_affinity",
        ]
        for name in available_job_routers():
            assert create_job_router(name).name == name
        with pytest.raises(ValueError):
            create_job_router("nope")

    def test_hash_router_is_stable_and_covers_shards(self, applications):
        fleet = two_shard_fleet(router=HashRouter())
        jobs = generate_workload(SPEC, applications=applications)
        router = HashRouter()
        first = [router.select_shard(fleet.shards, job) for job in jobs]
        second = [router.select_shard(fleet.shards, job) for job in jobs]
        assert first == second  # CRC-based, not Python-hash-randomized
        assert set(first) == {0, 1}  # 20 mixed jobs land on both shards

    def test_least_loaded_router_balances_job_counts(self):
        fleet = two_shard_fleet(router=LeastLoadedRouter())
        metrics = FederatedSimulationEngine(stream(max_jobs=40), FcfsScheduler, fleet).run()
        counts = [len(m.job_completion_times) for m in metrics.shards.values()]
        assert sum(counts) == 40
        assert abs(counts[0] - counts[1]) <= 4  # near-even split under balance

    def test_type_affinity_router_prefers_capacity_of_dominant_type(self, applications):
        # Shard s1 is LLM-rich; an LLM-heavy job must land there while
        # slots are free.
        fleet = FederatedCluster(
            [
                ("s0", Cluster(ClusterConfig(num_regular_executors=6, num_llm_executors=1))),
                ("s1", Cluster(ClusterConfig(num_regular_executors=2, num_llm_executors=4))),
            ],
            router=TypeAffinityRouter(),
        )
        jobs = generate_workload(SPEC, applications=applications)
        router = fleet.router
        for job in jobs:
            llm_work = sum(s.duration for s in job.stages.values() if s.is_llm)
            total = sum(s.duration for s in job.stages.values())
            index = router.select_shard(fleet.shards, job)
            if llm_work > 0.5 * total:
                assert index == 1  # 4*4=16 free LLM slots vs 1*4=4
            else:
                assert index == 0

    def test_routers_skip_shards_that_cannot_serve_the_job(self):
        """A regular-only shard is always the emptiest, but a job with an
        LLM stage must never be routed (or migrated) there."""
        from repro.dag.task import TaskType
        from repro.simulator.pool import PoolSpec

        regular_only = Cluster(pools=[PoolSpec("cpu", TaskType.REGULAR, 16)])
        mixed = Cluster(CLUSTER)
        fleet = FederatedCluster([("cpu-only", regular_only), ("mixed", mixed)])
        jobs = generate_workload(SPEC, applications=default_applications())
        llm_jobs = [
            job for job in jobs if any(s.is_llm for s in job.stages.values())
        ]
        assert llm_jobs  # the mixed workload always has LLM stages
        for router in (HashRouter(), LeastLoadedRouter(), TypeAffinityRouter()):
            for job in llm_jobs:
                assert router.select_shard(fleet.shards, job) == 1, router.name
        # End to end: the run completes instead of stalling on the
        # capability-blind shard.
        fleet = FederatedCluster(
            [("cpu-only", Cluster(pools=[PoolSpec("cpu", TaskType.REGULAR, 16)])),
             ("mixed", Cluster(CLUSTER))],
            router=LeastLoadedRouter(),
        )
        metrics = FederatedSimulationEngine(
            stream(max_jobs=30),
            FcfsScheduler,
            fleet,
            migration=MigrationConfig(interval=10.0, imbalance_threshold=0.05),
        ).run()
        # Completion is itself the regression: a capability-blind router or
        # migrator strands an LLM-staged job on cpu-only and the run dies
        # with "federated simulation stalled".
        assert len(metrics.job_completion_times) == 30

    def test_router_returning_bad_index_is_rejected(self):
        class BrokenRouter(HashRouter):
            def select_shard(self, shards, job):
                return 99

        fleet = two_shard_fleet(router=BrokenRouter())
        engine = FederatedSimulationEngine(stream(max_jobs=5), FcfsScheduler, fleet)
        with pytest.raises(ValueError, match="returned shard index"):
            engine.run()


# --------------------------------------------------------------------------- #
# Fleet construction and safety rails
# --------------------------------------------------------------------------- #
class TestFleetConstruction:
    def test_duplicate_shard_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate shard names"):
            FederatedCluster([("s", Cluster(CLUSTER)), ("s", Cluster(CLUSTER))])

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            FederatedCluster([])

    def test_homogeneous_builder(self):
        fleet = FederatedCluster.homogeneous(3, lambda: Cluster(CLUSTER))
        assert [s.name for s in fleet.shards] == ["shard-0", "shard-1", "shard-2"]
        assert len({id(s.cluster) for s in fleet.shards}) == 3

    def test_shared_scheduler_instance_rejected(self):
        shared = FcfsScheduler()
        fleet = two_shard_fleet()
        with pytest.raises(ValueError, match="its own scheduler"):
            FederatedSimulationEngine(stream(max_jobs=5), [shared, shared], fleet)

    def test_scheduler_count_must_match_shards(self):
        fleet = two_shard_fleet()
        with pytest.raises(ValueError, match="schedulers for"):
            FederatedSimulationEngine(stream(max_jobs=5), [FcfsScheduler()], fleet)

    def test_duplicate_job_ids_across_stream_rejected(self, applications):
        jobs = generate_workload(SPEC, applications=applications)
        dup = [jobs[0], jobs[0]]
        fleet = two_shard_fleet()
        with pytest.raises(ValueError, match="duplicate job id"):
            FederatedSimulationEngine(iter(dup), FcfsScheduler, fleet).run()

    def test_context_exposes_shard_view(self):
        seen = []

        class Spy(FcfsScheduler):
            def schedule(self, context):
                seen.append(
                    (context.shard_name, context.shard_count, dict(context.fleet_free_slots))
                )
                return super().schedule(context)

        fleet = two_shard_fleet()
        FederatedSimulationEngine(stream(max_jobs=10), Spy, fleet).run()
        assert seen
        names = {name for name, _, _ in seen}
        assert names <= {"s0", "s1"}
        assert all(count == 2 for _, count, _ in seen)
        assert all(
            set(free) == {TaskType.REGULAR, TaskType.LLM} for _, _, free in seen
        )


# --------------------------------------------------------------------------- #
# Migration: work conservation and exact cost metering
# --------------------------------------------------------------------------- #
def imbalanced_fleet():
    """Hash-skewed fleet: every job lands on s0, so s1 stays cold and the
    rebalancer has real work to do."""

    class AllToZero(HashRouter):
        def select_shard(self, shards, job):
            return 0

    config = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)
    return FederatedCluster(
        [("s0", Cluster(config)), ("s1", Cluster(config))], router=AllToZero()
    )


class TestMigration:
    def run_migrated(self, max_jobs=40, cost=2.5):
        jobs = list(stream(max_jobs=max_jobs, rate=3.0))
        fleet = imbalanced_fleet()
        engine = FederatedSimulationEngine(
            jobs,
            FcfsScheduler,
            fleet,
            migration=MigrationConfig(
                interval=5.0, imbalance_threshold=0.2, max_migrations_per_check=2, cost=cost
            ),
        )
        return jobs, engine, engine.run()

    def test_migrations_happen_and_all_jobs_finish(self):
        _, _, metrics = self.run_migrated()
        assert metrics.num_migrations > 0
        assert len(metrics.job_completion_times) == 40
        # Migrated jobs completed on the cold shard.
        assert len(metrics.shards["s1"].job_completion_times) > 0

    def test_migration_conserves_work_exactly(self):
        jobs, engine, metrics = self.run_migrated()
        tasks = [t for job in jobs for s in job.stages.values() for t in s.tasks]
        finished = [t for t in tasks if t.is_finished]
        # No progress lost at the checkpoint, none double-counted on resume.
        assert all(t.progress == pytest.approx(t.work) for t in finished)
        assert all(t.state is not TaskState.RUNNING for t in tasks)
        # Regular executors fleet-wide bill exactly the finished regular
        # work (speed 1): preempt/resume segments across shards add up.
        finished_regular = sum(t.work for t in finished if t.task_type is TaskType.REGULAR)
        busy = sum(
            e.busy_time
            for shard in engine.shards
            for e in shard.cluster.regular_executors
        )
        assert busy == pytest.approx(finished_regular, rel=1e-9)

    def test_migration_cost_metered_exactly_once_per_job(self):
        _, _, metrics = self.run_migrated(cost=2.5)
        assert metrics.migration_cost == pytest.approx(2.5 * metrics.num_migrations)
        assert len(metrics.migration_events) == metrics.num_migrations
        # Per-shard hand-off accounting mirrors the fleet ledger.
        assert metrics.shards["s0"].num_migrations_out == metrics.num_migrations
        assert metrics.shards["s1"].num_migrations_in == metrics.num_migrations
        for event in metrics.migration_events:
            assert event["source"] == "s0"
            assert event["target"] == "s1"
            assert event["cost"] == 2.5
            assert event["remaining_work"] >= 0.0

    def test_migrated_runs_are_deterministic(self):
        _, _, first = self.run_migrated()
        _, _, second = self.run_migrated()
        assert first.job_completion_times == second.job_completion_times
        assert first.migration_events == second.migration_events

    def test_no_migration_without_config(self):
        jobs = list(stream(max_jobs=20, rate=3.0))
        fleet = imbalanced_fleet()
        metrics = FederatedSimulationEngine(jobs, FcfsScheduler, fleet).run()
        assert metrics.num_migrations == 0
        assert metrics.migration_cost == 0.0
        # Without rebalancing the cold shard never sees a job.
        assert len(metrics.shards["s1"].job_completion_times) == 0

    def test_migration_balances_load_and_helps_jct(self):
        """Rebalancing a pathologically skewed fleet must beat leaving the
        hot shard to drown (the cold shard idles otherwise)."""
        jobs = list(stream(max_jobs=40, rate=3.0))
        skewed = FederatedSimulationEngine(jobs, FcfsScheduler, imbalanced_fleet()).run()
        _, _, migrated = self.run_migrated()
        assert migrated.average_jct < skewed.average_jct

    def test_rebalancing_converges_instead_of_ping_ponging(self):
        """The hot/cold gap is re-evaluated after every moved job: draining
        a whole max_migrations_per_check batch from one up-front load
        snapshot overshoots past balance and bounces the same jobs between
        shards on every check for the rest of the run."""
        from repro.dag.job import Job
        from repro.dag.stage import Stage, StageSpec, StageType

        def regular_job(job_id, arrival):
            job = Job(job_id, "app", arrival)
            job.add_stage(Stage(StageSpec("reg", StageType.REGULAR), job_id, [300.0]))
            job.finalize()
            return job

        class AllToZero(HashRouter):
            def select_shard(self, shards, job):
                return 0

        jobs = [regular_job(f"j{i}", float(i)) for i in range(6)]
        config = ClusterConfig(num_regular_executors=1, num_llm_executors=1)
        fleet = FederatedCluster(
            [("a", Cluster(config)), ("b", Cluster(config))], router=AllToZero()
        )
        metrics = FederatedSimulationEngine(
            jobs,
            FcfsScheduler,
            fleet,
            migration=MigrationConfig(
                interval=10.0, imbalance_threshold=0.2, max_migrations_per_check=4
            ),
        ).run()
        assert len(metrics.job_completion_times) == 6
        # Balance needs ~3 one-way moves; a ping-ponging rebalancer racks
        # up hundreds over the long run.
        assert metrics.num_migrations <= 6

    def test_migration_at_stale_shard_clock_conserves_elapsed_progress(self):
        """The migration tick is a fleet event: the hot shard's own clock
        may lag it.  The checkpoint must bank the work simulated up to the
        *fleet* time, not roll back to the shard's last event."""
        from repro.dag.job import Job
        from repro.dag.stage import Stage, StageSpec, StageType

        def regular_job(job_id, work, arrival):
            job = Job(job_id, "app", arrival)
            job.add_stage(Stage(StageSpec("reg", StageType.REGULAR), job_id, [work]))
            job.finalize()
            return job

        class AllToZero(HashRouter):
            def select_shard(self, shards, job):
                return 0

        # Two long jobs land on s0 (last shard event: t=1); s1 idles.  The
        # migration tick at t=7 moves the newest job with its running task.
        jobs = [regular_job("j0", 50.0, 0.0), regular_job("j1", 60.0, 1.0)]
        config = ClusterConfig(num_regular_executors=2, num_llm_executors=1)
        fleet = FederatedCluster(
            [("s0", Cluster(config)), ("s1", Cluster(config))], router=AllToZero()
        )
        metrics = FederatedSimulationEngine(
            jobs,
            FcfsScheduler,
            fleet,
            # Threshold below the initial 2-vs-0 imbalance (0.2 jobs/slot)
            # but above the 1-vs-0 tail once j0 completes, so exactly one
            # migration fires.
            migration=MigrationConfig(
                interval=7.0, imbalance_threshold=0.15, max_migrations_per_check=1
            ),
        ).run()
        assert metrics.num_migrations == 1
        assert metrics.migration_events[0]["job_id"] == "j1"
        # j1 ran on s0 for 6s (t=1..7), was checkpointed with that progress
        # and resumed on s1 at t=7: finish 7 + (60 - 6) = 61, JCT 60.  A
        # stale-clock checkpoint would bank 0s and finish at 67 instead.
        assert metrics.migration_events[0]["remaining_work"] == pytest.approx(54.0)
        assert metrics.job_completion_times["j1"] == pytest.approx(60.0)
        assert metrics.job_completion_times["j0"] == pytest.approx(50.0)

    def test_fleet_metrics_to_dict(self):
        _, _, metrics = self.run_migrated()
        summary = metrics.to_dict()
        assert summary["num_shards"] == 2
        assert summary["num_jobs"] == 40
        assert summary["num_migrations"] == metrics.num_migrations
        assert set(summary["utilization"]) == {"regular", "llm"}
        assert summary["num_events"] == sum(
            m.num_events for m in metrics.shards.values()
        )
