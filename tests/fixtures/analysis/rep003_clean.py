# repro: lint-as=src/repro/simulator/metered_fixture.py
"""Sanctioned wall-clock uses: pragma'd metering plus non-clock time APIs."""

import time


def metered_overhead():
    started = time.perf_counter()  # repro: REP003-exempt -- fixture: metering pragma
    return time.perf_counter() - started  # repro: REP003-exempt -- fixture: metering pragma


def not_a_clock(duration):
    time.sleep(duration)
