# repro: lint-as=src/repro/simulator/clock_fixture.py
"""Deliberate REP003 violations: wall-clock reads in simulation code."""

import time as wallclock
from datetime import datetime

import time


def stamp():
    return time.time()


def aliased_monotonic():
    return wallclock.monotonic()


def now():
    return datetime.now()
