# repro: lint-as=src/repro/schedulers/fixture_policy.py
"""Deliberate REP005 violations: nondeterministic iteration on the decision path."""

candidate_pool = {"a", "b", "c"}


def schedule(context):
    order = []
    for job_id in candidate_pool:
        order.append(job_id)
    ready = {task for task in context.tasks}
    picks = [task for task in ready]
    for key in context.jobs.keys():
        order.append(key)
    return order, picks


def select_shard(loads):
    shard_ids = set(loads)
    for shard in shard_ids:
        return shard
    return None
