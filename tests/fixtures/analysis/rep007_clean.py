# repro: lint-as=src/repro/schedulers/slo.py
"""REP007-clean: reads and the sanctioned Task API are fine anywhere."""


def deadline(task, ttft):
    return task.ready_time + ttft


def decompose(task, prefill):
    # The sanctioned mutation route: the Task API, not raw attribute writes.
    task.set_token_model(prompt_tokens=8, output_tokens=8, prefill_work=prefill)
    return task.prefill_work, task.first_token_time


def local_shadow(prompt_tokens):
    # Plain names (no attribute access) are not token-phase state.
    ready_time = 0.0
    first_token_time = prompt_tokens + ready_time
    return first_token_time
