# repro: lint-as=src/repro/api/results.py
"""REP008-clean: provenance is read freely; identity is derived, not assigned."""


def short_id(record):
    return record.record_id[:12]


def same_run(record, spec):
    # Reading provenance fields (and computing hashes) is fine anywhere.
    return record.spec_hash == spec.content_hash()


def local_shadow(spec):
    # Plain names (no attribute access) are not provenance state.
    spec_hash = spec.content_hash()
    record_id = spec_hash[:8]
    return record_id
