# repro: lint-as=src/repro/simulator/copies_fixture.py
"""Deliberate REP004 violations: deepcopy outside the oracle allowlist."""

import copy
from copy import deepcopy


def module_spelling(jobs):
    return copy.deepcopy(jobs)


def from_import_spelling(jobs):
    return deepcopy(jobs)
