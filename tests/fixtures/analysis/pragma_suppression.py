# repro: lint-as=src/repro/simulator/suppressed_fixture.py
"""Violations from several rules, each silenced by a per-line pragma."""

import copy
import time

import numpy as np


def all_suppressed(jobs):
    started = time.time()  # repro: REP003-exempt -- fixture: suppression under test
    rng = np.random.default_rng()  # repro: REP002-exempt -- fixture: suppression under test
    clone = copy.deepcopy(jobs)  # repro: REP004-exempt -- fixture: suppression under test
    return started, rng, clone


def multi_code_line(jobs):
    return time.time(), copy.deepcopy(jobs)  # repro: REP003-exempt,REP004-exempt -- fixture
