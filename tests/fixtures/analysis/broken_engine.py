# repro: lint-as=src/repro/simulator/engine.py
"""The gate-bites fixture: one seeded violation for each of REP001-REP008.

``tests/test_analysis_rules.py`` asserts the analyzer reports *exactly* the
eight codes on this file; if a rule rots and stops firing here, tier 1 fails.
"""

import copy
import time

import numpy as np


class _BrokenEngine:
    def place(self, job, stage):
        stage.mark_running()  # REP001: no dominating dirty mark
        job.invalidate_schedulable_cache()  # REP001

    def schedule(self, context):
        rng = np.random.default_rng()  # REP002: entropy-seeded
        started = time.time()  # REP003: wall clock
        plan = copy.deepcopy(context)  # REP004: stray deepcopy
        frozen = context.snapshot()  # REP006: unaudited snapshot site
        ready = {task.key() for task in context.tasks}
        ordered = [task for task in ready]  # REP005: set iteration
        context.head.first_token_time = started  # REP007: token-phase write
        context.record.spec_hash = "deadbeef"  # REP008: forged provenance
        return rng, started, plan, frozen, ordered
