# repro: lint-as=src/repro/simulator/reference.py
"""deepcopy inside a golden-oracle module — REP004's allowlist must hold."""

import copy


def oracle_copy(jobs):
    return copy.deepcopy(jobs)


def shallow_is_always_fine(jobs):
    return copy.copy(jobs)
