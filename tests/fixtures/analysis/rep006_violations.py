# repro: lint-as=src/repro/schedulers/greedy_fixture.py
"""Deliberate REP006 violation: a snapshot minted outside the audited site."""


def schedule(context):
    frozen = context.snapshot()
    return frozen
