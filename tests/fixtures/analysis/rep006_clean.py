# repro: lint-as=src/repro/simulator/async_sched.py
"""The audited snapshot site shape (request() in async_sched) — stays quiet."""


class _Backend:
    def request(self, context):
        self._pending = context.snapshot()
        return self._pending

    def drain(self, registry):
        # snapshot(...) with arguments is some other API, not ours.
        return registry.snapshot("tagged")
