# repro: lint-as=src/repro/api/results.py
"""REP008 violations: provenance writes outside repro/store/."""


def forge_identity(record, digest):
    record.spec_hash = digest  # asserted, not derived from canonical content
    record.record_id = digest[:12]  # forges the content address


def patch_hash(record):
    record.spec_hash += "00"


def relabel(record, rid, out):
    out, record.record_id = rid, rid  # tuple-unpacking write still counts
