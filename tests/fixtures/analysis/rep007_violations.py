# repro: lint-as=src/repro/schedulers/slo.py
"""REP007 violations: token-phase writes outside task/stage/executor."""


def forge_first_token(task, now):
    task.first_token_time = now  # forging a serving sample nobody simulated
    task.prefill_work = 0.0  # breaks prefill + decode == work


def inflate(task):
    task.output_tokens += 1


def requeue(task, when, out):
    out, task.ready_time = when, when  # tuple-unpacking write still counts
