# repro: lint-as=src/repro/workloads/seeded_fixture.py
"""Seeded randomness in every sanctioned spelling — REP002 must stay quiet."""

import numpy as np
from numpy.random import default_rng


def seeded_generator(seed):
    return np.random.default_rng(seed)


def seeded_from_import(seed):
    return default_rng(seed)


def seed_sequence(entropy):
    return np.random.SeedSequence(entropy)


def draws(rng, n):
    # Calls on a Generator instance are not module-level global state.
    return rng.normal(size=n)
