# repro: lint-as=src/repro/workloads/unseeded_fixture.py
"""Deliberate REP002 violations: unseeded / global-state randomness."""

import random

import numpy as np


def entropy_seeded_generator():
    return np.random.default_rng()


def global_numpy_state(n):
    return np.random.rand(n)


def global_random_module():
    return random.random()
