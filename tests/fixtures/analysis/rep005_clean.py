# repro: lint-as=src/repro/schedulers/sorted_policy.py
"""Sorted iteration everywhere REP005 looks — must stay quiet."""

candidate_pool = {"a", "b", "c"}


def schedule(context):
    order = [job_id for job_id in sorted(candidate_pool)]
    for key in sorted(context.jobs.keys()):
        order.append(key)
    return order


def _helper(mapping):
    # Raw dict views outside decision functions are insertion-ordered: fine.
    return list(mapping.values())
