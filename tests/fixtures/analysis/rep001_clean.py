# repro: lint-as=src/repro/simulator/engine.py
"""Every dominance shape REP001 sanctions, one per method — must stay quiet."""


class _CleanEngine:
    def direct_mark(self, job):
        self._mark_job_dirty(job)
        job.advance(2.0)

    def cow_guard(self, job):
        cow = self._cow
        if cow is not None and cow.active:
            cow.mark_dirty(job)
        job.invalidate_schedulable_cache()

    def none_guard(self, job_id, now):
        job = self._active_jobs.get(job_id)
        if job is not None:
            self._mark_job_dirty(job)
        self.cluster.advance_to(now)

    def full_branch_coverage(self, job, done):
        if done:
            self._mark_job_dirty(job)
        else:
            return
        job.notify_stage_finished("s0", 0.0)

    def through_wrapper(self, now):
        self.advance_cluster_to(now)

    def loop_mark_inside(self, jobs):
        for job in jobs:
            self._mark_job_dirty(job)
            job.advance(1.0)
