# repro: lint-as=src/repro/simulator/engine.py
"""Deliberate REP001 violations: job mutations with no dominating dirty mark.

Each method mutates a Job/Stage/Task (or calls a cluster mutator that does so
transitively) without a dirty-marking statement in a dominating position.
``tests/test_analysis_rules.py`` pins the exact finding count.
"""


class _BrokenEngine:
    def unmarked_attribute_write(self, job):
        job.deadline = 12.0

    def unmarked_mutating_call(self, job):
        job.invalidate_schedulable_cache()

    def unmarked_cluster_mutation(self, when):
        self.cluster.advance_to(when)

    def branch_local_mark(self, job, fast):
        if fast:
            self._mark_job_dirty(job)
        # Marking in one branch of a plain conditional does not dominate.
        job.notify_stage_finished("s0", 1.0)

    def loop_local_mark(self, jobs):
        for job in jobs:
            self._mark_job_dirty(job)
        # A loop body never dominates past the loop (zero iterations).
        job.advance(1.0)
