"""Tests for the event queue."""

import pytest

from repro.simulator.events import EventQueue, EventType


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(5.0, EventType.JOB_ARRIVAL, "late")
        queue.push(1.0, EventType.JOB_ARRIVAL, "early")
        queue.push(3.0, EventType.TASK_FINISH, "middle")
        assert queue.pop().payload == "early"
        assert queue.pop().payload == "middle"
        assert queue.pop().payload == "late"

    def test_fifo_tie_breaking(self):
        queue = EventQueue()
        queue.push(1.0, EventType.JOB_ARRIVAL, "first")
        queue.push(1.0, EventType.JOB_ARRIVAL, "second")
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(1.0, EventType.JOB_ARRIVAL, "x")
        assert queue.peek().payload == "x"
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventType.JOB_ARRIVAL)

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, EventType.JOB_ARRIVAL)
        assert queue
        assert len(queue) == 1

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None
