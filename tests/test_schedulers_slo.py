"""Unit + integration tests for the SLO-aware serving scheduler."""

import math

import pytest

from repro.dag.job import Job
from repro.dag.stage import Stage, StageSpec, StageType
from repro.dag.task import Task, TaskType
from repro.schedulers.base import SchedulingContext
from repro.schedulers.registry import (
    available_schedulers,
    create_scheduler,
    scheduler_requirements,
)
from repro.schedulers.slo import _NO_DEADLINE, SloServingScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, generate_workload
from repro.workloads.serving import DEFAULT_SLO_TARGETS, attach_token_model

TARGETS = {
    "interactive": {"ttft": 8.0, "tpot": 0.08},
    "batch": {"ttft": 60.0, "tpot": 0.5},
}


def make_llm_job(job_id, arrival=0.0, work=2.0, tier="interactive"):
    job = Job(job_id, "app", arrival)
    job.add_stage(Stage(StageSpec("llm", StageType.LLM), job_id, [work]))
    job.finalize()
    job.priority = tier
    return job


def token_task(job, prompt=100, output=101, prefill=0.5):
    task = job.stages["llm"].tasks[0]
    task.set_token_model(prompt_tokens=prompt, output_tokens=output, prefill_work=prefill)
    return task


class TestRegistry:
    def test_default_lineup_unchanged(self):
        assert available_schedulers() == [
            "fcfs",
            "sjf",
            "fair",
            "argus",
            "decima",
            "carbyne",
            "srtf",
            "llmsched",
        ]

    def test_serving_flag_exposes_slo_scheduler(self):
        names = available_schedulers(include_serving=True)
        assert "slo_serving" in names

    def test_create_and_requirements(self):
        scheduler = create_scheduler("slo_serving", slo_targets=TARGETS)
        assert isinstance(scheduler, SloServingScheduler)
        assert scheduler.preemptive
        assert scheduler_requirements("slo_serving") == frozenset()


class TestConstructorValidation:
    def test_rejects_negative_slope(self):
        with pytest.raises(ValueError, match="latency_slope"):
            SloServingScheduler(latency_slope=-0.1)

    def test_rejects_negative_margin(self):
        with pytest.raises(ValueError, match="slack_margin"):
            SloServingScheduler(slack_margin=-1.0)

    def test_rejects_zero_preemption_budget(self):
        with pytest.raises(ValueError, match="max_preemptions"):
            SloServingScheduler(max_preemptions_per_event=0)

    def test_defaults_to_default_targets(self):
        scheduler = SloServingScheduler()
        assert scheduler._targets == DEFAULT_SLO_TARGETS


class TestDeadlinesAndCaps:
    def test_deadline_is_ready_plus_ttft(self):
        scheduler = SloServingScheduler(slo_targets=TARGETS)
        job = make_llm_job("j0")
        task = token_task(job)
        context = SchedulingContext(time=3.0, jobs=[job])
        task.ready_time = 2.0
        assert scheduler._deadline(context, task) == pytest.approx(10.0)

    def test_deadline_without_token_model_sorts_last(self):
        scheduler = SloServingScheduler(slo_targets=TARGETS)
        job = make_llm_job("j0")
        context = SchedulingContext(time=0.0, jobs=[job])
        task = job.stages["llm"].tasks[0]
        assert scheduler._deadline(context, task) == _NO_DEADLINE

    def test_batch_cap_formula(self):
        scheduler = SloServingScheduler(slo_targets=TARGETS, latency_slope=0.06)
        job = make_llm_job("j0", work=2.0)
        # decode_work = 1.5 over 100 decode steps -> 0.015 s/token vs 0.08:
        # cap = 1 + (0.08/0.015 - 1)/0.06
        task = token_task(job, prompt=100, output=101, prefill=0.5)
        context = SchedulingContext(time=0.0, jobs=[job])
        expected = 1.0 + (0.08 / task.per_token_decode_work() - 1.0) / 0.06
        assert scheduler._batch_cap(context, task) == pytest.approx(expected)

    def test_batch_cap_hopeless_request_is_unconstrained(self):
        scheduler = SloServingScheduler(slo_targets=TARGETS)
        job = make_llm_job("j0", work=20.0)
        # 19.5 decode work over 100 steps -> 0.195 s/token > 0.08 target:
        # nothing can save it, so it must not cap the batch for others.
        task = token_task(job, prompt=100, output=101, prefill=0.5)
        context = SchedulingContext(time=0.0, jobs=[job])
        assert scheduler._batch_cap(context, task) == math.inf

    def test_doomed_only_before_first_token(self):
        job = make_llm_job("j0")
        task = token_task(job, prefill=0.5)
        # Deadline 1.0, now 0.8: 0.5s of prefill cannot land by 1.0.
        assert SloServingScheduler._is_doomed(task, 1.0, 0.8)
        # Same instant, but the first token already streamed: not doomed.
        task.first_token_time = 0.7
        assert not SloServingScheduler._is_doomed(task, 1.0, 0.8)

    def test_feasible_when_prefill_fits(self):
        job = make_llm_job("j0")
        task = token_task(job, prefill=0.5)
        assert not SloServingScheduler._is_doomed(task, 1.0, 0.4)


class TestEdfOrdering:
    def test_tighter_deadline_first_doomed_last(self):
        scheduler = SloServingScheduler(slo_targets=TARGETS)
        tight = make_llm_job("tight", arrival=0.0, tier="interactive")
        loose = make_llm_job("loose", arrival=0.0, tier="batch")
        doomed = make_llm_job("doomed", arrival=0.0, tier="interactive")
        for job in (tight, loose, doomed):
            token_task(job)
        now = 20.0
        tight.stages["llm"].tasks[0].ready_time = now - 1.0  # deadline now+7
        loose.stages["llm"].tasks[0].ready_time = now - 1.0  # deadline now+59
        doomed.stages["llm"].tasks[0].ready_time = 0.0  # deadline 8 < now
        context = SchedulingContext(
            time=now, jobs=[doomed, loose, tight], free_llm_slots=8,
            llm_batch_sizes=[0, 0],
        )
        decision = scheduler.schedule(context)
        assert [t.job_id for t in decision.llm_tasks] == ["tight", "loose", "doomed"]


class TestEndToEnd:
    def run_once(self, num_jobs=12, mix="chat"):
        jobs = generate_workload(
            WorkloadSpec(
                workload_type=WorkloadType.MIXED,
                num_jobs=num_jobs,
                arrival_rate=1.2,
                seed=7,
            )
        )
        attach_token_model(jobs, mix, seed=3)
        engine = SimulationEngine(
            jobs,
            SloServingScheduler(slo_targets=TARGETS),
            cluster=Cluster(
                ClusterConfig(
                    num_regular_executors=3, num_llm_executors=2, max_batch_size=4
                )
            ),
        )
        engine.metrics.slo_targets = {t: dict(v) for t, v in TARGETS.items()}
        return engine.run()

    def test_work_conserving_all_jobs_finish(self):
        metrics = self.run_once()
        assert len(metrics.job_completion_times) == 12
        assert all(jct > 0 for jct in metrics.job_completion_times.values())
        assert metrics.has_serving_samples

    def test_deterministic_across_runs(self):
        first = self.run_once()
        second = self.run_once()
        assert first.job_completion_times == second.job_completion_times
        assert first.makespan == second.makespan
        assert first.serving_summary() == second.serving_summary()

    def test_serving_block_in_metrics_payload(self):
        payload = self.run_once().to_dict()
        assert payload["serving"]["version"] == 1
        assert payload["serving"]["num_requests"] > 0
