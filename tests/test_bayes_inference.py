"""Tests for variable-elimination inference."""

import itertools

import numpy as np
import pytest

from repro.bayes.cpd import TabularCPD
from repro.bayes.inference import VariableElimination
from repro.bayes.network import DiscreteBayesianNetwork


def build_sprinkler_network():
    """Classic rain/sprinkler/grass network with known posteriors."""
    net = DiscreteBayesianNetwork()
    net.add_node("rain", 2)
    net.add_node("sprinkler", 2)
    net.add_node("grass_wet", 2)
    net.add_edge("rain", "sprinkler")
    net.add_edge("rain", "grass_wet")
    net.add_edge("sprinkler", "grass_wet")
    net.set_cpd(TabularCPD.from_marginal("rain", [0.8, 0.2]))
    net.set_cpd(
        TabularCPD("sprinkler", 2, np.array([[0.6, 0.99], [0.4, 0.01]]), ["rain"], {"rain": 2})
    )
    # parents ordered alphabetically by network: ["rain", "sprinkler"]
    # columns: (rain=0, spr=0), (rain=0, spr=1), (rain=1, spr=0), (rain=1, spr=1)
    net.set_cpd(
        TabularCPD(
            "grass_wet",
            2,
            np.array([[1.0, 0.1, 0.2, 0.01], [0.0, 0.9, 0.8, 0.99]]),
            ["rain", "sprinkler"],
            {"rain": 2, "sprinkler": 2},
        )
    )
    return net


def brute_force_posterior(net, query_vars, evidence):
    """Enumerate the full joint to compute reference posteriors."""
    joint = net.joint_distribution()
    reduced = joint.reduce(evidence).normalize()
    others = [v for v in reduced.variables if v not in query_vars]
    return reduced.marginalize(others).normalize()


class TestQueriesAgainstBruteForce:
    @pytest.mark.parametrize(
        "query_vars,evidence",
        [
            (["rain"], {}),
            (["rain"], {"grass_wet": 1}),
            (["sprinkler"], {"grass_wet": 1}),
            (["rain", "sprinkler"], {"grass_wet": 1}),
            (["grass_wet"], {"rain": 1}),
        ],
    )
    def test_matches_enumeration(self, query_vars, evidence):
        net = build_sprinkler_network()
        engine = VariableElimination(net)
        result = engine.query(query_vars, evidence)
        reference = brute_force_posterior(net, query_vars, evidence)
        for assignment, _ in reference.assignments():
            assert result.get(assignment) == pytest.approx(reference.get(assignment), abs=1e-9)

    def test_known_sprinkler_posterior(self):
        # P(rain=1 | grass_wet=1) for this parameterisation is ~0.3577.
        net = build_sprinkler_network()
        engine = VariableElimination(net)
        posterior = engine.query(["rain"], {"grass_wet": 1})
        assert posterior.values[1] == pytest.approx(0.3577, abs=0.001)


class TestQueryValidation:
    def test_unknown_variable_raises(self):
        engine = VariableElimination(build_sprinkler_network())
        with pytest.raises(ValueError):
            engine.query(["nope"])

    def test_unknown_evidence_raises(self):
        engine = VariableElimination(build_sprinkler_network())
        with pytest.raises(ValueError):
            engine.query(["rain"], {"nope": 0})

    def test_all_query_vars_in_evidence_raises(self):
        engine = VariableElimination(build_sprinkler_network())
        with pytest.raises(ValueError):
            engine.query(["rain"], {"rain": 1})


class TestDerivedQueries:
    def test_posterior_marginals_with_evidence_point_mass(self):
        engine = VariableElimination(build_sprinkler_network())
        marginals = engine.posterior_marginals(["rain", "grass_wet"], {"grass_wet": 1})
        assert marginals["grass_wet"] == pytest.approx([0.0, 1.0])
        assert marginals["rain"].sum() == pytest.approx(1.0)

    def test_map_assignment(self):
        engine = VariableElimination(build_sprinkler_network())
        assignment = engine.map_assignment(["rain"], {"grass_wet": 1})
        assert assignment == {"rain": 0}

    def test_expected_value_uses_state_labels(self):
        net = DiscreteBayesianNetwork()
        net.add_node("x", 3, state_labels=[1.0, 5.0, 10.0])
        net.set_cpd(TabularCPD.from_marginal("x", [0.2, 0.5, 0.3]))
        engine = VariableElimination(net)
        assert engine.expected_value("x") == pytest.approx(0.2 * 1 + 0.5 * 5 + 0.3 * 10)

    def test_expected_value_with_evidence_is_label(self):
        net = DiscreteBayesianNetwork()
        net.add_node("x", 2, state_labels=[2.0, 8.0])
        net.set_cpd(TabularCPD.from_marginal("x", [0.5, 0.5]))
        engine = VariableElimination(net)
        assert engine.expected_value("x", evidence={"x": 1}) == pytest.approx(8.0)

    def test_expected_value_explicit_values(self):
        net = DiscreteBayesianNetwork()
        net.add_node("x", 2)
        net.set_cpd(TabularCPD.from_marginal("x", [0.25, 0.75]))
        engine = VariableElimination(net)
        assert engine.expected_value("x", state_values=[0.0, 4.0]) == pytest.approx(3.0)


class TestLargerNetwork:
    def test_chain_of_five_posterior_consistency(self):
        # a -> b -> c -> d -> e with noisy copies; conditioning on e=1 should
        # raise the posterior of a=1 relative to the prior.
        net = DiscreteBayesianNetwork()
        names = list("abcde")
        for name in names:
            net.add_node(name, 2)
        net.set_cpd(TabularCPD.from_marginal("a", [0.7, 0.3]))
        for parent, child in zip(names[:-1], names[1:], strict=True):
            net.add_edge(parent, child)
            net.set_cpd(
                TabularCPD(child, 2, np.array([[0.85, 0.15], [0.15, 0.85]]), [parent], {parent: 2})
            )
        engine = VariableElimination(net)
        prior = engine.query(["a"]).values[1]
        posterior = engine.query(["a"], {"e": 1}).values[1]
        assert posterior > prior

    def test_joint_query_over_three_variables(self):
        net = build_sprinkler_network()
        engine = VariableElimination(net)
        joint = engine.query(["rain", "sprinkler", "grass_wet"])
        assert joint.total == pytest.approx(1.0)
        reference = net.joint_distribution()
        for assignment in itertools.product(range(2), repeat=3):
            mapping = dict(zip(["rain", "sprinkler", "grass_wet"], assignment, strict=True))
            assert joint.get(mapping) == pytest.approx(reference.get(mapping), abs=1e-9)
