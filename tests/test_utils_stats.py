"""Tests for statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    OnlineStats,
    histogram_probabilities,
    pearson_correlation,
    pearson_correlation_matrix,
    percentile_summary,
    summarize,
)


class TestPearsonCorrelation:
    def test_perfect_positive(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2.0, 4.0, 6.0, 8.0]
        assert pearson_correlation(xs, ys) == pytest.approx(1.0)

    def test_perfect_negative(self):
        xs = [1.0, 2.0, 3.0]
        ys = [3.0, 2.0, 1.0]
        assert pearson_correlation(xs, ys) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        assert pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0, 2.0], [1.0])

    def test_single_sample_returns_zero(self):
        assert pearson_correlation([1.0], [2.0]) == 0.0

    @given(
        st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=3, max_size=30),
    )
    @settings(max_examples=50)
    def test_bounded_in_unit_interval(self, xs):
        ys = [x * 2 + 1 for x in xs]
        value = pearson_correlation(xs, ys)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestCorrelationMatrix:
    def test_diagonal_is_one_and_symmetric(self):
        columns = {"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0, 5.0], "c": [3.0, 1.0, 2.0]}
        matrix = pearson_correlation_matrix(columns)
        for name in columns:
            assert matrix[name][name] == 1.0
        for a in columns:
            for b in columns:
                assert matrix[a][b] == pytest.approx(matrix[b][a])


class TestHistogramProbabilities:
    def test_masses_sum_to_one(self):
        probs = histogram_probabilities([1, 2, 3, 4, 5], [0, 2, 4, 6])
        assert sum(probs) == pytest.approx(1.0)

    def test_out_of_range_values_clipped(self):
        probs = histogram_probabilities([-10, 100], [0, 1, 2])
        assert sum(probs) == pytest.approx(1.0)

    def test_empty_values(self):
        assert histogram_probabilities([], [0, 1, 2]) == [0.0, 0.0]

    def test_bad_edges_raise(self):
        with pytest.raises(ValueError):
            histogram_probabilities([1.0], [3, 2, 1])
        with pytest.raises(ValueError):
            histogram_probabilities([1.0], [1])


class TestOnlineStats:
    def test_matches_numpy(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        stats = OnlineStats()
        stats.extend(values)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values, ddof=1))
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)
        assert stats.percentile(50) == pytest.approx(np.percentile(values, 50))

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().percentile(50)

    def test_single_value_variance_zero(self):
        stats = OnlineStats()
        stats.add(4.2)
        assert stats.variance == 0.0
        assert stats.std == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_mean_within_min_max(self, values):
        stats = OnlineStats()
        stats.extend(values)
        assert stats.minimum - 1e-6 <= stats.mean <= stats.maximum + 1e-6


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary["count"] == 0.0
        assert math.isnan(summary["mean"])

    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["count"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0


class TestPercentileSummary:
    def test_empty_is_nan_with_zero_count(self):
        summary = percentile_summary([])
        assert summary["count"] == 0.0
        assert math.isnan(summary["mean"]) and math.isnan(summary["p95"])

    def test_matches_numpy(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        summary = percentile_summary(values)
        assert summary["count"] == 5.0
        assert summary["mean"] == pytest.approx(5.0)
        for q, key in ((50, "p50"), (95, "p95"), (99, "p99")):
            assert summary[key] == pytest.approx(np.percentile(values, q))

    def test_non_integer_percentile_key(self):
        summary = percentile_summary([1.0, 2.0], percentiles=(99.9,))
        assert "p99.9" in summary

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_percentiles_bounded_by_extremes(self, values):
        summary = percentile_summary(values)
        assert min(values) - 1e-6 <= summary["p50"] <= max(values) + 1e-6
        assert summary["p50"] <= summary["p95"] + 1e-6 <= summary["p99"] + 2e-6
