"""Tests for the threshold autoscaler and its engine integration."""

import pytest

from repro.dag.task import Task, TaskType
from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.autoscaler import AutoscalerConfig, ThresholdAutoscaler
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SimulationEngine
from repro.simulator.pool import PoolSpec
from repro.workloads.arrivals import DiurnalProcess, open_loop_jobs


def llm_task(work=1.0):
    return Task(job_id="j", stage_id="s", task_type=TaskType.LLM, work=work)


def elastic_cluster():
    return Cluster(
        pools=[
            PoolSpec("cpu", TaskType.REGULAR, 4, min_executors=2, max_executors=24),
            PoolSpec("gpu", TaskType.LLM, 1, max_batch_size=4, min_executors=1, max_executors=12),
        ]
    )


class TestAutoscalerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0.0},
            {"scale_up_occupancy": 0.0},
            {"scale_up_occupancy": 1.5},
            {"scale_down_occupancy": -0.1},
            {"scale_down_occupancy": 0.95},  # >= scale_up default 0.9
            {"step": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalerConfig(**kwargs)


class TestCheck:
    def test_scales_up_full_pool_with_backlog(self):
        cluster = elastic_cluster()
        for _ in range(4):
            assert cluster.assign_llm_task(llm_task(work=50.0), 0.0) is not None
        autoscaler = ThresholdAutoscaler(AutoscalerConfig(interval=10.0, step=2))
        events = autoscaler.check(cluster, {TaskType.LLM: 6, TaskType.REGULAR: 0}, 10.0)
        gpu_events = [e for e in events if e.pool == "gpu"]
        assert len(gpu_events) == 1
        assert gpu_events[0].delta == 2
        assert cluster.pool("gpu").num_active_executors == 3
        assert autoscaler.next_check_time == 20.0

    def test_no_scale_up_without_backlog(self):
        cluster = elastic_cluster()
        for _ in range(4):
            cluster.assign_llm_task(llm_task(work=50.0), 0.0)
        autoscaler = ThresholdAutoscaler(AutoscalerConfig(interval=10.0))
        events = autoscaler.check(cluster, {TaskType.LLM: 0, TaskType.REGULAR: 0}, 10.0)
        assert [e for e in events if e.delta > 0] == []

    def test_scales_down_idle_pool(self):
        cluster = elastic_cluster()
        autoscaler = ThresholdAutoscaler(AutoscalerConfig(interval=10.0, step=2))
        events = autoscaler.check(cluster, {TaskType.LLM: 0, TaskType.REGULAR: 0}, 10.0)
        cpu_events = [e for e in events if e.pool == "cpu"]
        assert len(cpu_events) == 1
        assert cpu_events[0].delta == -2
        assert cluster.pool("cpu").num_active_executors == 2

    def test_respects_min_executors(self):
        cluster = elastic_cluster()
        autoscaler = ThresholdAutoscaler(AutoscalerConfig(interval=10.0, step=10))
        autoscaler.check(cluster, {TaskType.LLM: 0, TaskType.REGULAR: 0}, 10.0)
        assert cluster.pool("cpu").num_active_executors == 2  # min_executors
        assert cluster.pool("gpu").num_active_executors == 1

    def test_retired_executors_excluded_from_batch_size_signal(self):
        cluster = elastic_cluster()
        cluster.scale_pool("gpu", 2)
        task = llm_task(work=50.0)
        assert cluster.assign_llm_task(task, 0.0) is not None
        assert cluster.active_llm_batch_sizes() == [1, 0, 0]
        cluster.scale_pool("gpu", -2)  # retires the two idle executors
        # Retired executors (permanent batch size 0) drop out of the signal.
        assert cluster.active_llm_batch_sizes() == [1]

    def test_full_pool_defers_to_sibling_with_free_slots(self):
        cluster = Cluster(
            pools=[
                PoolSpec("cpu-a", TaskType.REGULAR, 5, max_executors=8),
                PoolSpec("cpu-b", TaskType.REGULAR, 2, max_executors=8),
                PoolSpec("gpu", TaskType.LLM, 1, max_batch_size=2),
            ]
        )
        def reg_task():
            return Task(job_id="j", stage_id="s", task_type=TaskType.REGULAR, work=50.0)
        for _ in range(2):
            assert cluster.pool("cpu-b").assign(reg_task(), 0.0) is not None
        autoscaler = ThresholdAutoscaler(AutoscalerConfig(interval=10.0))
        # cpu-b is full but cpu-a's 5 free slots absorb the backlog of 3.
        events = autoscaler.check(cluster, {TaskType.REGULAR: 3, TaskType.LLM: 0}, 10.0)
        assert [e for e in events if e.delta > 0] == []
        # Backlog beyond the type-wide free capacity does scale the full pool.
        autoscaler2 = ThresholdAutoscaler(AutoscalerConfig(interval=10.0))
        events = autoscaler2.check(cluster, {TaskType.REGULAR: 9, TaskType.LLM: 0}, 10.0)
        assert any(e.pool == "cpu-b" and e.delta > 0 for e in events)

    def test_reused_autoscaler_rearms_per_engine(self):
        autoscaler = ThresholdAutoscaler(
            AutoscalerConfig(interval=20.0, scale_up_occupancy=0.85, scale_down_occupancy=0.25, step=2)
        )
        _, first = self.run_diurnal_with(autoscaler)
        _, second = self.run_diurnal_with(autoscaler)  # same instance, fresh engine
        assert first.scale_events == second.scale_events
        assert second.scale_events  # not silently disabled by stale schedule

    def run_diurnal_with(self, autoscaler):
        stream = open_loop_jobs(
            DiurnalProcess(mean_rate=1.0, amplitude=0.9, period=600.0, seed=3),
            seed=3,
            max_jobs=60,
        )
        engine = SimulationEngine(
            stream, FcfsScheduler(), cluster=elastic_cluster(), autoscaler=autoscaler
        )
        return engine, engine.run()

    def test_one_sibling_scale_up_absorbs_shared_backlog(self):
        cluster = Cluster(
            pools=[
                PoolSpec("cpu", TaskType.REGULAR, 1),
                PoolSpec("gpu-a", TaskType.LLM, 1, max_batch_size=4, max_executors=4),
                PoolSpec("gpu-b", TaskType.LLM, 1, max_batch_size=4, max_executors=4),
            ]
        )
        for _ in range(8):  # both LLM pools full
            assert cluster.assign_llm_task(llm_task(work=50.0), 0.0) is not None
        autoscaler = ThresholdAutoscaler(AutoscalerConfig(interval=10.0, step=1))
        events = autoscaler.check(cluster, {TaskType.LLM: 2, TaskType.REGULAR: 0}, 10.0)
        ups = [e for e in events if e.delta > 0]
        # The first scale-up (4 fresh slots) absorbs the backlog of 2; the
        # sibling must not also scale for the same demand.
        assert len(ups) == 1

    def test_external_scale_pool_growth_without_autoscaler(self):
        """The engine's LLM views must grow lazily when the cluster is
        resized outside its own autoscaler (e.g. a scheduler hook)."""
        from repro.workloads.arrivals import PoissonProcess

        cluster = Cluster(
            pools=[
                PoolSpec("cpu", TaskType.REGULAR, 2),
                PoolSpec("gpu", TaskType.LLM, 1, max_batch_size=2, max_executors=6),
            ]
        )

        class ScalingFcfs(FcfsScheduler):
            def on_job_arrival(self, job, time):
                cluster.scale_pool("gpu", 1)

        stream = open_loop_jobs(PoissonProcess(rate=2.0, seed=8), seed=8, max_jobs=15)
        engine = SimulationEngine(stream, ScalingFcfs(), cluster=cluster)
        metrics = engine.run()  # would IndexError without the lazy sync
        assert len(metrics.job_completion_times) == 15

    def test_check_at_eps_before_schedule_advances_it(self):
        cluster = elastic_cluster()
        autoscaler = ThresholdAutoscaler(AutoscalerConfig(interval=10.0))
        # Fired a hair early (the engine triggers at now + eps >= next):
        autoscaler.check(cluster, {TaskType.LLM: 0, TaskType.REGULAR: 0}, 10.0 - 5e-10, eps=1e-9)
        assert autoscaler.next_check_time == pytest.approx(20.0)

    def test_scale_down_capped_per_type_across_siblings(self):
        """Regression: every idle sibling pool used to drain ``step``
        executors in one check event, dropping the type's capacity by
        pools x step — far below the band's one-step-per-event intent."""
        cluster = Cluster(
            pools=[
                PoolSpec("cpu-a", TaskType.REGULAR, 4, min_executors=0),
                PoolSpec("cpu-b", TaskType.REGULAR, 4, min_executors=0),
                PoolSpec("cpu-c", TaskType.REGULAR, 4, min_executors=0),
                PoolSpec("gpu", TaskType.LLM, 2, max_batch_size=2, min_executors=1),
            ]
        )
        autoscaler = ThresholdAutoscaler(AutoscalerConfig(interval=10.0, step=2))
        events = autoscaler.check(cluster, {TaskType.REGULAR: 0, TaskType.LLM: 0}, 10.0)
        regular_drained = -sum(
            e.delta for e in events if e.delta < 0 and e.pool.startswith("cpu")
        )
        assert regular_drained == 2  # was 6 before the per-type cap
        assert (
            sum(cluster.pool(n).num_active_executors for n in ("cpu-a", "cpu-b", "cpu-c"))
            == 10
        )
        # The LLM budget is independent: its lone eligible pool still drains.
        assert any(e.pool == "gpu" and e.delta < 0 for e in events)
        # Later check events re-arm the budget, so the drain continues at
        # one type-step per event instead of stalling.
        events2 = autoscaler.check(cluster, {TaskType.REGULAR: 0, TaskType.LLM: 0}, 20.0)
        assert -sum(e.delta for e in events2 if e.pool.startswith("cpu")) == 2

    def test_zero_capacity_pool_scales_up_on_backlog(self):
        cluster = Cluster(
            pools=[
                PoolSpec("cpu", TaskType.REGULAR, 2, min_executors=0, max_executors=4),
                PoolSpec("gpu", TaskType.LLM, 1, max_batch_size=2, min_executors=1),
            ]
        )
        cluster.scale_pool("cpu", -2)
        assert cluster.pool("cpu").capacity == 0
        autoscaler = ThresholdAutoscaler(AutoscalerConfig(interval=5.0))
        events = autoscaler.check(cluster, {TaskType.REGULAR: 3, TaskType.LLM: 0}, 5.0)
        assert any(e.pool == "cpu" and e.delta > 0 for e in events)


class TestEngineIntegration:
    def run_diurnal(self, autoscaler):
        stream = open_loop_jobs(
            DiurnalProcess(mean_rate=1.0, amplitude=0.9, period=600.0, seed=3),
            seed=3,
            max_jobs=120,
        )
        engine = SimulationEngine(
            stream, FcfsScheduler(), cluster=elastic_cluster(), autoscaler=autoscaler
        )
        return engine, engine.run()

    def test_diurnal_run_scales_and_completes(self):
        autoscaler = ThresholdAutoscaler(
            AutoscalerConfig(interval=20.0, scale_up_occupancy=0.85, scale_down_occupancy=0.25, step=2)
        )
        engine, metrics = self.run_diurnal(autoscaler)
        assert len(metrics.job_completion_times) == 120
        assert metrics.scale_events  # pools were resized at least once
        ups = [e for e in metrics.scale_events if e["delta"] > 0]
        assert ups, "a diurnal peak should trigger at least one scale-up"
        for pool in engine.cluster.pools:
            assert pool.spec.min_executors <= pool.num_active_executors
            if pool.spec.max_executors is not None:
                assert pool.num_active_executors <= pool.spec.max_executors

    def test_autoscaled_run_is_deterministic(self):
        def fresh():
            return ThresholdAutoscaler(
                AutoscalerConfig(interval=20.0, scale_up_occupancy=0.85, scale_down_occupancy=0.25, step=2)
            )

        _, first = self.run_diurnal(fresh())
        _, second = self.run_diurnal(fresh())
        assert first.job_completion_times == second.job_completion_times
        assert first.scale_events == second.scale_events

    def test_autoscaling_improves_peak_jct_over_static_floor(self):
        """An elastic cluster beats the same cluster pinned at its floor size."""
        stream_args = dict(seed=3, max_jobs=120)
        process = DiurnalProcess(mean_rate=1.0, amplitude=0.9, period=600.0, seed=3)

        def run(autoscaler, pools):
            stream = open_loop_jobs(process, **stream_args)
            engine = SimulationEngine(
                stream, FcfsScheduler(), cluster=Cluster(pools=pools), autoscaler=autoscaler
            )
            return engine.run()

        floor = [
            PoolSpec("cpu", TaskType.REGULAR, 2, min_executors=2, max_executors=24),
            PoolSpec("gpu", TaskType.LLM, 1, max_batch_size=4, min_executors=1, max_executors=12),
        ]
        static = run(None, floor)
        elastic = run(
            ThresholdAutoscaler(
                AutoscalerConfig(interval=20.0, scale_up_occupancy=0.85, scale_down_occupancy=0.25, step=2)
            ),
            floor,
        )
        assert elastic.average_jct < static.average_jct
