"""Tests for structure and parameter learning."""

import numpy as np
import pytest

from repro.bayes.learning import (
    StructureLearningConfig,
    build_network_from_samples,
    fit_cpds,
    learn_structure_from_correlations,
)
from repro.bayes.network import DiscreteBayesianNetwork
from repro.bayes.inference import VariableElimination


def correlated_duration_samples(n=400, seed=0):
    """Three stages: s0 drives s1; s2 is independent noise."""
    rng = np.random.default_rng(seed)
    s0 = rng.uniform(5.0, 50.0, n)
    s1 = s0 * 1.5 + rng.normal(0, 1.0, n)
    s2 = rng.uniform(5.0, 50.0, n)
    return {"s0": s0, "s1": s1, "s2": s2}


class TestStructureLearning:
    def test_correlated_edge_found_independent_edge_skipped(self):
        samples = correlated_duration_samples()
        edges = learn_structure_from_correlations(samples, ["s0", "s1", "s2"])
        assert ("s0", "s1") in edges
        assert ("s0", "s2") not in edges
        assert ("s1", "s2") not in edges

    def test_direction_follows_variable_order(self):
        samples = correlated_duration_samples()
        edges = learn_structure_from_correlations(samples, ["s1", "s0", "s2"])
        assert ("s1", "s0") in edges
        assert ("s0", "s1") not in edges

    def test_max_parents_cap(self):
        rng = np.random.default_rng(1)
        base = rng.uniform(1, 10, 300)
        samples = {
            "a": base + rng.normal(0, 0.1, 300),
            "b": base + rng.normal(0, 0.1, 300),
            "c": base + rng.normal(0, 0.1, 300),
            "d": base + rng.normal(0, 0.1, 300),
        }
        config = StructureLearningConfig(correlation_threshold=0.3, max_parents=2)
        edges = learn_structure_from_correlations(samples, ["a", "b", "c", "d"], config)
        parents_of_d = [p for p, c in edges if c == "d"]
        assert len(parents_of_d) <= 2

    def test_missing_samples_raise(self):
        with pytest.raises(ValueError):
            learn_structure_from_correlations({"a": [1.0, 2.0]}, ["a", "b"])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            StructureLearningConfig(correlation_threshold=1.5)
        with pytest.raises(ValueError):
            StructureLearningConfig(max_parents=-1)


class TestFitCpds:
    def build_net(self):
        net = DiscreteBayesianNetwork()
        net.add_node("x", 2)
        net.add_node("y", 2)
        net.add_edge("x", "y")
        return net

    def test_learned_probabilities_match_frequencies(self):
        net = self.build_net()
        # x=1 in 50% of samples, y copies x 90% of the time.
        rng = np.random.default_rng(3)
        n = 5000
        x = rng.integers(0, 2, n)
        flip = rng.random(n) < 0.1
        y = np.where(flip, 1 - x, x)
        fit_cpds(net, {"x": x, "y": y}, laplace_alpha=0.0)
        cpd_y = net.get_cpd("y")
        assert cpd_y.column_for({"x": 0})[0] == pytest.approx(0.9, abs=0.03)
        assert cpd_y.column_for({"x": 1})[1] == pytest.approx(0.9, abs=0.03)

    def test_laplace_smoothing_avoids_zero_probabilities(self):
        net = self.build_net()
        x = [0, 0, 0, 0]
        y = [0, 0, 0, 0]
        fit_cpds(net, {"x": x, "y": y}, laplace_alpha=1.0)
        cpd_y = net.get_cpd("y")
        assert np.all(cpd_y.table > 0)
        # Unseen parent configuration (x=1) falls back to uniform.
        assert cpd_y.column_for({"x": 1})[0] == pytest.approx(0.5)

    def test_out_of_range_state_rejected(self):
        net = self.build_net()
        with pytest.raises(ValueError):
            fit_cpds(net, {"x": [0, 3], "y": [0, 1]})

    def test_inconsistent_lengths_rejected(self):
        net = self.build_net()
        with pytest.raises(ValueError):
            fit_cpds(net, {"x": [0, 1], "y": [0]})

    def test_missing_variable_rejected(self):
        net = self.build_net()
        with pytest.raises(ValueError):
            fit_cpds(net, {"x": [0, 1]})

    def test_zero_samples_rejected(self):
        net = self.build_net()
        with pytest.raises(ValueError):
            fit_cpds(net, {"x": [], "y": []})


class TestBuildNetworkFromSamples:
    def test_end_to_end_inference_reduces_uncertainty(self):
        continuous = correlated_duration_samples(n=800, seed=7)
        # Discretise into 2 states by the median of each column.
        discrete = {}
        for name, values in continuous.items():
            median = np.median(values)
            discrete[name] = [int(v > median) for v in values]
        net = build_network_from_samples(
            continuous_samples=continuous,
            discrete_samples=discrete,
            cardinalities={"s0": 2, "s1": 2, "s2": 2},
            state_labels={"s0": [0, 1], "s1": [0, 1], "s2": [0, 1]},
            variable_order=["s0", "s1", "s2"],
        )
        assert ("s0", "s1") in net.edges
        engine = VariableElimination(net)
        prior_s1 = engine.query(["s1"]).values
        posterior_s1 = engine.query(["s1"], {"s0": 1}).values
        # Observing s0 should sharpen the belief about s1 towards state 1.
        assert posterior_s1[1] > prior_s1[1]
