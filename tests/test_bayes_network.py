"""Tests for the Bayesian network container."""

import numpy as np
import pytest

from repro.bayes.cpd import TabularCPD
from repro.bayes.network import DiscreteBayesianNetwork
from repro.utils.rng import make_rng


def build_chain_network():
    """a -> b -> c, binary variables with strongly coupled CPDs."""
    net = DiscreteBayesianNetwork()
    net.add_node("a", 2)
    net.add_node("b", 2)
    net.add_node("c", 2)
    net.add_edge("a", "b")
    net.add_edge("b", "c")
    net.set_cpd(TabularCPD.from_marginal("a", [0.6, 0.4]))
    net.set_cpd(
        TabularCPD("b", 2, np.array([[0.9, 0.2], [0.1, 0.8]]), ["a"], {"a": 2})
    )
    net.set_cpd(
        TabularCPD("c", 2, np.array([[0.7, 0.3], [0.3, 0.7]]), ["b"], {"b": 2})
    )
    return net


class TestStructure:
    def test_duplicate_node_raises(self):
        net = DiscreteBayesianNetwork()
        net.add_node("a", 2)
        with pytest.raises(ValueError):
            net.add_node("a", 3)

    def test_cycle_rejected(self):
        net = DiscreteBayesianNetwork()
        for name in "abc":
            net.add_node(name, 2)
        net.add_edge("a", "b")
        net.add_edge("b", "c")
        with pytest.raises(ValueError):
            net.add_edge("c", "a")
        assert ("c", "a") not in net.edges

    def test_self_loop_rejected(self):
        net = DiscreteBayesianNetwork()
        net.add_node("a", 2)
        with pytest.raises(ValueError):
            net.add_edge("a", "a")

    def test_unknown_node_edge_raises(self):
        net = DiscreteBayesianNetwork()
        net.add_node("a", 2)
        with pytest.raises(ValueError):
            net.add_edge("a", "missing")

    def test_state_label_length_checked(self):
        net = DiscreteBayesianNetwork()
        with pytest.raises(ValueError):
            net.add_node("a", 3, state_labels=[1.0, 2.0])

    def test_topological_order(self):
        net = build_chain_network()
        order = net.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_directed_path_and_correlated(self):
        net = build_chain_network()
        assert net.has_directed_path("a", "c")
        assert not net.has_directed_path("c", "a")
        assert not net.has_directed_path("a", "a")
        assert net.correlated_nodes("b") == {"a", "c"}


class TestCpdManagement:
    def test_cpd_parent_mismatch_rejected(self):
        net = DiscreteBayesianNetwork()
        net.add_node("a", 2)
        net.add_node("b", 2)
        net.add_edge("a", "b")
        with pytest.raises(ValueError):
            net.set_cpd(TabularCPD.from_marginal("b", [0.5, 0.5]))

    def test_cpd_cardinality_mismatch_rejected(self):
        net = DiscreteBayesianNetwork()
        net.add_node("a", 3)
        with pytest.raises(ValueError):
            net.set_cpd(TabularCPD.from_marginal("a", [0.5, 0.5]))

    def test_check_model_requires_all_cpds(self):
        net = DiscreteBayesianNetwork()
        net.add_node("a", 2)
        with pytest.raises(ValueError):
            net.check_model()

    def test_check_model_passes_when_complete(self):
        net = build_chain_network()
        assert net.check_model()


class TestDistributions:
    def test_joint_distribution_normalised(self):
        net = build_chain_network()
        joint = net.joint_distribution()
        assert joint.total == pytest.approx(1.0)
        assert set(joint.variables) == {"a", "b", "c"}

    def test_joint_marginal_matches_root_cpd(self):
        net = build_chain_network()
        joint = net.joint_distribution()
        assert joint.marginal("a") == pytest.approx([0.6, 0.4])

    def test_sampling_respects_marginal(self):
        net = build_chain_network()
        rng = make_rng(0)
        samples = net.sample(rng, 4000)
        freq_a1 = sum(s["a"] for s in samples) / len(samples)
        assert freq_a1 == pytest.approx(0.4, abs=0.05)

    def test_copy_is_independent(self):
        net = build_chain_network()
        clone = net.copy()
        assert clone.nodes == net.nodes
        assert clone.edges == net.edges
        clone.add_node("d", 2)
        assert "d" not in net.nodes
