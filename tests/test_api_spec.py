"""Spec-tree tests: validation errors and JSON round-tripping.

The hypothesis property is the satellite acceptance bar of ISSUE 5:
``ScenarioSpec.from_json(spec.to_json()) == spec`` across every section —
closed/open workloads (including combinator arrival processes), cluster
shapes (sized / config / pools / federated), placement, async latency
models, autoscaler and settings.
"""

import json

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.api import (
    AsyncSection,
    AutoscalerSection,
    ClusterSection,
    ExperimentSettings,
    MigrationSection,
    PlacementSection,
    ScenarioSpec,
    SchedulerSection,
    SLOSection,
    SpecError,
    WorkloadSection,
    with_overrides,
)
from repro.dag.task import TaskType
from repro.simulator.async_sched import AsyncConfig, PerJobLinearLatency, SampledLatency
from repro.simulator.cluster import ClusterConfig
from repro.simulator.pool import PoolSpec
from repro.workloads.arrivals import (
    BurstyProcess,
    DiurnalProcess,
    PoissonProcess,
    TraceReplayProcess,
    superpose,
)
from repro.workloads.mixtures import WorkloadType
from repro.workloads.serving import available_token_mixes


# --------------------------------------------------------------------------- #
# Validation: actionable errors
# --------------------------------------------------------------------------- #
class TestValidation:
    def test_unknown_scheduler_lists_available(self):
        with pytest.raises(SpecError, match="unknown scheduler 'nope'.*available.*fcfs"):
            SchedulerSection("nope")

    def test_unknown_scheduler_kwargs_fail_at_validation(self):
        # A typo must fail at spec construction ("repro validate"), not
        # after the expensive profiler fit at run time.
        with pytest.raises(SpecError, match="epsilonn.*valid.*epsilon"):
            SchedulerSection("llmsched", kwargs={"epsilonn": 0.1})
        with pytest.raises(SpecError, match="does not accept kwargs.*bogus"):
            SchedulerSection("fcfs", kwargs={"bogus": 1})

    def test_baseline_kwargs_pass_through(self):
        # srtf_preempt genuinely accepts constructor kwargs.
        section = SchedulerSection("srtf_preempt", kwargs={"checkpoint": False})
        assert section.kwargs == {"checkpoint": False}

    def test_unknown_workload_type(self):
        with pytest.raises(SpecError, match="unknown workload_type.*mixed"):
            WorkloadSection.closed_loop("not-a-mix")

    def test_open_mode_requires_process(self):
        with pytest.raises(SpecError, match="process"):
            WorkloadSection(mode="open")

    def test_closed_mode_rejects_process(self):
        with pytest.raises(SpecError, match="closed-loop"):
            WorkloadSection(mode="closed", process=PoissonProcess(rate=1.0))

    def test_cluster_config_and_pools_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            ClusterSection(
                config=ClusterConfig(),
                pools=(PoolSpec("cpu", TaskType.REGULAR, 2),),
            )

    def test_federation_rejects_pools(self):
        with pytest.raises(SpecError, match="per-shard"):
            ClusterSection(pools=(PoolSpec("cpu", TaskType.REGULAR, 2),), num_shards=2)

    def test_migration_requires_federation(self):
        with pytest.raises(SpecError, match="num_shards > 1"):
            ClusterSection(migration=MigrationSection())

    def test_unknown_router_lists_available(self):
        with pytest.raises(SpecError, match="unknown job router.*least_loaded"):
            ClusterSection(num_shards=2, router="wormhole")

    def test_unknown_placement_lists_available(self):
        with pytest.raises(SpecError, match="unknown placement policy.*greedy"):
            PlacementSection("teleport")

    def test_federation_plus_autoscaler_conflict(self):
        with pytest.raises(SpecError, match="autoscal"):
            ScenarioSpec(
                workload=WorkloadSection.open_loop(PoissonProcess(rate=1.0), max_jobs=5),
                cluster=ClusterSection(config=ClusterConfig(), num_shards=2),
                autoscaler=AutoscalerSection(),
            )

    def test_federation_plus_placement_conflict(self):
        with pytest.raises(SpecError, match="placement"):
            ScenarioSpec(
                workload=WorkloadSection.open_loop(PoissonProcess(rate=1.0), max_jobs=5),
                cluster=ClusterSection(config=ClusterConfig(), num_shards=2),
                placement=PlacementSection(),
            )

    def test_federation_requires_open_loop(self):
        with pytest.raises(SpecError, match="open-loop"):
            ScenarioSpec(
                workload=WorkloadSection.closed_loop(),
                cluster=ClusterSection(config=ClusterConfig(), num_shards=2),
            )

    def test_schema_version_mismatch(self):
        with pytest.raises(SpecError, match="schema_version"):
            ScenarioSpec(schema_version=999)

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="unknown top-level key.*schedulerz"):
            ScenarioSpec.from_dict({"schedulerz": {}})

    def test_unknown_section_key(self):
        with pytest.raises(SpecError, match="unknown key.*arrival_rte"):
            ScenarioSpec.from_dict({"workload": {"arrival_rte": 1.0}})

    def test_async_negative_latency(self):
        with pytest.raises(SpecError, match=">= 0"):
            AsyncSection(latency=-1.0)

    def test_async_sampled_needs_samples(self):
        with pytest.raises(SpecError, match="samples"):
            AsyncSection(kind="sampled")

    def test_async_unknown_kind(self):
        with pytest.raises(SpecError, match="unknown async latency kind"):
            AsyncSection(kind="quantum")

    def test_async_rejects_kind_mismatched_fields(self):
        # Overriding async.latency over a sampled section must not silently
        # run identical cells.
        with pytest.raises(SpecError, match="'latency' has no effect.*sampled"):
            AsyncSection(kind="sampled", samples=(0.5,), latency=2.0)
        with pytest.raises(SpecError, match="'base' has no effect.*fixed"):
            AsyncSection(kind="fixed", latency=1.0, base=0.5)

    def test_unknown_process_kind(self):
        with pytest.raises(SpecError, match="unknown arrival process kind"):
            ScenarioSpec.from_dict(
                {"workload": {"mode": "open", "process": {"kind": "tachyon"}}}
            )

    def test_bad_json_is_spec_error(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            ScenarioSpec.from_json("{nope")

    def test_unknown_token_mix_lists_available(self):
        with pytest.raises(SpecError, match="unknown token_mix 'bogus'.*chat"):
            WorkloadSection.closed_loop(token_mix="bogus")

    def test_token_seed_requires_mix(self):
        with pytest.raises(SpecError, match="token_seed.*token_mix"):
            WorkloadSection.closed_loop(token_seed=3)

    def test_slo_unknown_target_key(self):
        with pytest.raises(SpecError, match="unknown SLO target.*ttftt"):
            SLOSection(tiers={"interactive": {"ttftt": 1.0}})

    def test_slo_non_positive_target(self):
        with pytest.raises(SpecError, match="must be > 0"):
            SLOSection(tiers={"interactive": {"ttft": 0.0}})

    def test_slo_empty_tier(self):
        with pytest.raises(SpecError, match="sets no targets"):
            SLOSection(tiers={"interactive": {}})

    def test_slo_needs_a_tier(self):
        with pytest.raises(SpecError, match="at least one tier"):
            SLOSection(tiers={})

    def test_federation_rejects_token_mix(self):
        with pytest.raises(SpecError, match="single-cluster.*token"):
            ScenarioSpec(
                workload=WorkloadSection(
                    mode="open",
                    process=PoissonProcess(rate=1.0),
                    max_jobs=5,
                    token_mix="chat",
                ),
                cluster=ClusterSection(config=ClusterConfig(), num_shards=2),
            ).validate()


# --------------------------------------------------------------------------- #
# Schema v1 -> v2 migration
# --------------------------------------------------------------------------- #
class TestSchemaMigration:
    V1_DOC = {
        "schema_version": 1,
        "scheduler": {"name": "fcfs"},
        "workload": {"mode": "closed", "workload_type": "mixed", "num_jobs": 4},
        "cluster": {"config": {"num_regular_executors": 2, "num_llm_executors": 1}},
    }

    def test_v1_doc_upcasts_to_current_schema(self):
        spec = ScenarioSpec.from_dict(self.V1_DOC)
        assert spec.schema_version == 2
        assert spec.scheduler.name == "fcfs"
        # The upcast is idempotent: serializing re-stamps the document.
        assert spec.to_dict()["schema_version"] == 2

    def test_v1_doc_rejects_v2_only_slo_section(self):
        doc = {**self.V1_DOC, "slo": {"tiers": {"interactive": {"ttft": 5.0}}}}
        with pytest.raises(SpecError, match="schema_version 1.*v2-only.*slo"):
            ScenarioSpec.from_dict(doc)

    def test_v1_doc_rejects_v2_only_token_mix(self):
        doc = {
            **self.V1_DOC,
            "workload": {**self.V1_DOC["workload"], "token_mix": "chat"},
        }
        with pytest.raises(SpecError, match="schema_version 1.*v2-only.*token_mix"):
            ScenarioSpec.from_dict(doc)

    def test_v1_doc_rejects_v2_only_pool_role(self):
        doc = {
            **self.V1_DOC,
            "cluster": {
                "pools": [
                    {
                        "name": "gpu",
                        "task_type": "llm",
                        "num_executors": 1,
                        "role": "prefill",
                    }
                ]
            },
        }
        with pytest.raises(SpecError, match="schema_version 1.*v2-only.*role"):
            ScenarioSpec.from_dict(doc)

    def test_committed_v1_example_loads_through_v2_reader(self):
        # examples/specs/closed_mixed_fcfs.json is deliberately kept at
        # schema v1 as the living migration regression.
        from pathlib import Path

        path = (
            Path(__file__).parent.parent / "examples" / "specs" / "closed_mixed_fcfs.json"
        )
        raw = json.loads(path.read_text())
        assert raw["schema_version"] == 1
        spec = ScenarioSpec.from_json(path.read_text())
        assert spec.schema_version == 2
        spec.validate()


class TestAsyncSectionBridge:
    def test_from_async_config_roundtrip_fixed(self):
        section = AsyncSection.from_async_config(AsyncConfig(latency=2.5, pipelined=True))
        assert section.kind == "fixed" and section.latency == 2.5 and section.pipelined
        config = section.to_async_config()
        assert config.latency == 2.5 and config.pipelined

    def test_from_async_config_models(self):
        linear = AsyncSection.from_async_config(
            AsyncConfig(latency=PerJobLinearLatency(base=0.5, per_job=0.2))
        )
        assert linear.kind == "per_job_linear" and linear.base == 0.5
        sampled = AsyncSection.from_async_config(
            AsyncConfig(latency=SampledLatency([1.0, 2.0], seed=3))
        )
        assert sampled.kind == "sampled" and sampled.samples == (1.0, 2.0)

    def test_from_async_config_unrepresentable_is_none(self):
        class Weird(PerJobLinearLatency):
            pass

        assert AsyncSection.from_async_config(AsyncConfig(latency=Weird())) is None
        assert AsyncSection.from_async_config(None) is None


class TestSnapshotPolicy:
    def test_invalid_policy_raises_value_error_directly(self):
        with pytest.raises(ValueError, match="snapshot_policy must be 'cow' or 'deepcopy'"):
            ExperimentSettings(snapshot_policy="bogus")

    def test_invalid_policy_in_dict_becomes_spec_error(self):
        with pytest.raises(SpecError, match="snapshot_policy"):
            ScenarioSpec.from_dict({"settings": {"snapshot_policy": "bogus"}})

    def test_policy_survives_json_roundtrip(self):
        spec = ScenarioSpec(
            workload=WorkloadSection.closed_loop(num_jobs=5),
            settings=ExperimentSettings(snapshot_policy="deepcopy"),
        )
        replayed = ScenarioSpec.from_json(spec.to_json())
        assert replayed.settings.snapshot_policy == "deepcopy"
        assert replayed == spec

    def test_policy_defaults_to_cow(self):
        assert ExperimentSettings().snapshot_policy == "cow"

    def test_policy_override_path(self):
        spec = ScenarioSpec(workload=WorkloadSection.closed_loop(num_jobs=5))
        out = with_overrides(spec, {"settings.snapshot_policy": "deepcopy"})
        assert out.settings.snapshot_policy == "deepcopy"
        with pytest.raises(SpecError):
            with_overrides(spec, {"settings.snapshot_policy": "shallow"})


class TestOverrides:
    def test_override_creates_async_section(self):
        spec = ScenarioSpec(workload=WorkloadSection.closed_loop(num_jobs=5))
        out = with_overrides(spec, {"async.latency": 2.0, "scheduler.name": "sjf"})
        assert out.async_.latency == 2.0
        assert out.scheduler.name == "sjf"
        assert out.workload == spec.workload

    def test_override_invalid_value_raises(self):
        spec = ScenarioSpec(workload=WorkloadSection.closed_loop(num_jobs=5))
        with pytest.raises(SpecError):
            with_overrides(spec, {"async.latency": -1.0})

    def test_override_clears_section(self):
        spec = ScenarioSpec(
            workload=WorkloadSection.open_loop(PoissonProcess(rate=1.0), max_jobs=5),
            cluster=ClusterSection(
                config=ClusterConfig(), num_shards=2, migration=MigrationSection()
            ),
        )
        out = with_overrides(spec, {"cluster.num_shards": 1, "cluster.migration": None})
        assert out.cluster.num_shards == 1 and out.cluster.migration is None


# --------------------------------------------------------------------------- #
# Round-tripping (hypothesis)
# --------------------------------------------------------------------------- #
_rates = st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False)
_seeds = st.integers(0, 99)

_leaf_processes = st.one_of(
    st.builds(PoissonProcess, rate=_rates, seed=_seeds),
    st.builds(
        BurstyProcess,
        base_rate=_rates,
        burst_rate=_rates,
        mean_normal_duration=st.floats(1.0, 200.0),
        mean_burst_duration=st.floats(1.0, 50.0),
        seed=_seeds,
    ),
    st.builds(
        DiurnalProcess,
        mean_rate=_rates,
        amplitude=st.floats(0.0, 1.0),
        period=st.floats(10.0, 1e5),
        seed=_seeds,
    ),
    st.builds(
        TraceReplayProcess,
        trace=st.lists(st.floats(0.0, 100.0), max_size=4).map(
            lambda xs: tuple(sorted(xs))
        ),
    ),
)

_processes = st.recursive(
    _leaf_processes,
    lambda inner: st.one_of(
        st.tuples(inner, st.integers(0, 50)).map(lambda t: t[0].take(t[1])),
        st.tuples(inner, st.floats(1.0, 1e4)).map(lambda t: t[0].until(t[1])),
        st.lists(inner, min_size=1, max_size=3).map(lambda ps: superpose(*ps)),
    ),
    max_leaves=4,
)

@st.composite
def _closed_workload_strategy(draw):
    # token_seed is only legal alongside a token_mix (validated), so the
    # strategy draws them dependently.
    token_mix = draw(st.one_of(st.none(), st.sampled_from(available_token_mixes())))
    token_seed = draw(st.one_of(st.none(), _seeds)) if token_mix is not None else None
    return WorkloadSection.closed_loop(
        workload_type=draw(st.sampled_from([w.value for w in WorkloadType])),
        num_jobs=draw(st.integers(1, 500)),
        arrival_rate=draw(_rates),
        seed=draw(_seeds),
        token_mix=token_mix,
        token_seed=token_seed,
    )


_closed_workloads = _closed_workload_strategy()

_open_workloads = st.builds(
    WorkloadSection.open_loop,
    process=_processes,
    application_names=st.one_of(
        st.none(), st.just(("code_generation", "web_search"))
    ),
    seed=_seeds,
    max_jobs=st.one_of(st.none(), st.integers(1, 200)),
    horizon=st.one_of(st.none(), st.floats(1.0, 1e4)),
    name=st.sampled_from(["open_loop", "bursty", "diurnal"]),
)

_cluster_configs = st.builds(
    ClusterConfig,
    num_regular_executors=st.integers(1, 32),
    num_llm_executors=st.integers(1, 16),
    max_batch_size=st.integers(1, 16),
    latency_slope=st.floats(0.0, 0.5),
)

_pools = st.lists(
    st.one_of(
        st.builds(
            PoolSpec,
            name=st.sampled_from(["cpu", "cpu2", "arm"]),
            task_type=st.just(TaskType.REGULAR),
            num_executors=st.integers(1, 8),
        ),
        st.builds(
            PoolSpec,
            name=st.sampled_from(["gpu", "a100", "h800"]),
            task_type=st.just(TaskType.LLM),
            num_executors=st.integers(1, 4),
            max_batch_size=st.integers(1, 16),
            speed_factor=st.floats(0.5, 2.0, exclude_min=True),
            role=st.sampled_from([None, "prefill", "decode"]),
        ),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda p: p.name,
).map(tuple)

_schedulers = st.one_of(
    st.builds(SchedulerSection, name=st.sampled_from(["fcfs", "sjf", "srtf", "llmsched"])),
    st.builds(
        SchedulerSection,
        name=st.just("llmsched"),
        kwargs=st.just({"epsilon": 0.25}),
    ),
)

_async_sections = st.one_of(
    st.none(),
    st.builds(
        AsyncSection,
        kind=st.just("fixed"),
        latency=st.floats(0.0, 10.0),
        pipelined=st.booleans(),
        max_in_flight=st.integers(1, 4),
    ),
    st.builds(
        AsyncSection,
        kind=st.just("per_job_linear"),
        base=st.floats(0.0, 2.0),
        per_job=st.floats(0.0, 1.0),
    ),
    st.builds(
        AsyncSection,
        kind=st.just("sampled"),
        samples=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=4).map(tuple),
        seed=_seeds,
    ),
)

_slo_targets = st.one_of(
    st.fixed_dictionaries({"ttft": st.floats(0.1, 100.0)}),
    st.fixed_dictionaries({"tpot": st.floats(0.001, 1.0)}),
    st.fixed_dictionaries(
        {"ttft": st.floats(0.1, 100.0), "tpot": st.floats(0.001, 1.0)}
    ),
)

_slo_sections = st.one_of(
    st.none(),
    st.builds(
        SLOSection,
        tiers=st.dictionaries(
            st.sampled_from(["interactive", "batch", "default"]),
            _slo_targets,
            min_size=1,
            max_size=3,
        ),
    ),
)

_settings = st.builds(
    ExperimentSettings,
    target_load=st.floats(0.5, 2.0, exclude_min=True),
    profile_jobs=st.integers(10, 200),
    prior_samples=st.integers(10, 200),
    profiler_seed=_seeds,
    snapshot_policy=st.sampled_from(["cow", "deepcopy"]),
)


@st.composite
def scenario_specs(draw):
    federated = draw(st.booleans())
    if federated:
        workload = draw(_open_workloads)
        cluster = ClusterSection(
            config=draw(_cluster_configs.filter(
                lambda c: c.num_regular_executors >= 2 and c.num_llm_executors >= 2
            )),
            num_shards=draw(st.integers(2, 4)),
            router=draw(st.sampled_from(["hash", "least_loaded", "type_affinity"])),
            migration=draw(st.one_of(st.none(), st.builds(MigrationSection))),
        )
        placement = None
        autoscaler = None
    else:
        workload = draw(st.one_of(_closed_workloads, _open_workloads))
        shape = draw(st.sampled_from(["sized", "config", "pools"]))
        if shape == "config":
            cluster = ClusterSection(config=draw(_cluster_configs))
        elif shape == "pools":
            cluster = ClusterSection(pools=draw(_pools))
        else:
            cluster = ClusterSection(nominal_rate=draw(st.one_of(st.none(), _rates)))
        placement = draw(
            st.one_of(st.none(), st.builds(PlacementSection, name=st.sampled_from(["greedy", "best_fit"])))
        )
        autoscaler = draw(
            st.one_of(st.none(), st.builds(AutoscalerSection, step=st.integers(1, 4)))
        )
    return ScenarioSpec(
        scheduler=draw(_schedulers),
        workload=workload,
        cluster=cluster,
        placement=placement,
        async_=draw(_async_sections),
        autoscaler=autoscaler,
        slo=draw(_slo_sections),
        settings=draw(_settings),
    )


@hyp_settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_spec_json_roundtrip(spec):
    text = spec.to_json()
    json.loads(text)  # valid JSON
    assert ScenarioSpec.from_json(text) == spec
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


@hyp_settings(max_examples=30, deadline=None)
@given(scenario_specs())
def test_spec_roundtrip_is_stable(spec):
    """Serialization is a fixed point: dict -> spec -> dict is identity."""
    once = spec.to_dict()
    again = ScenarioSpec.from_dict(once).to_dict()
    assert once == again


@hyp_settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_spec_content_hash_roundtrip(spec):
    """The canonical identity survives serialization: ISSUE 10's property.

    ``content_hash`` hashes the *canonical* JSON of ``to_dict()``, so a spec
    reconstructed from its own serialized form — whatever dict insertion
    order or JSON whitespace it travelled through — must hash identically,
    and the hash must be a stable 64-char hex digest.
    """
    digest = spec.content_hash()
    assert len(digest) == 64 and int(digest, 16) >= 0
    assert ScenarioSpec.from_dict(spec.to_dict()).content_hash() == digest
    # Formatting-insensitive: a pretty-printed to_json round trip and a
    # key-order-scrambled dict both land on the same hash.
    assert ScenarioSpec.from_json(spec.to_json()).content_hash() == digest
    scrambled = json.loads(json.dumps(spec.to_dict()))
    scrambled = dict(reversed(list(scrambled.items())))
    assert ScenarioSpec.from_dict(scrambled).content_hash() == digest
