"""Tests for workload building blocks and synthetic datasets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import make_rng
from repro.workloads.base import (
    LatentScaledDuration,
    sample_lognormal,
    sample_truncated_geometric,
)
from repro.workloads.datasets import (
    HotpotQaLikeDataset,
    MbppLikeDataset,
    Query,
    SyntheticSequenceDataset,
    TaskBenchLikeDataset,
)


class TestSampleLognormal:
    def test_mean_is_approximately_preserved(self):
        rng = make_rng(0)
        samples = [sample_lognormal(rng, 10.0, sigma=0.4) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.1)

    def test_zero_sigma_returns_mean(self):
        rng = make_rng(0)
        assert sample_lognormal(rng, 5.0, sigma=0.0) == 5.0

    def test_minimum_enforced(self):
        rng = make_rng(0)
        assert all(
            sample_lognormal(rng, 0.1, sigma=1.0, minimum=0.05) >= 0.05 for _ in range(100)
        )

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            sample_lognormal(make_rng(0), 0.0)

    @given(st.floats(min_value=0.1, max_value=100.0), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_always_positive(self, mean, sigma):
        value = sample_lognormal(make_rng(1), mean, sigma)
        assert value > 0


class TestTruncatedGeometric:
    def test_bounds_respected(self):
        rng = make_rng(0)
        values = [sample_truncated_geometric(rng, 0.5, 2, 6) for _ in range(500)]
        assert min(values) >= 2
        assert max(values) <= 6

    def test_zero_probability_returns_minimum(self):
        rng = make_rng(0)
        assert sample_truncated_geometric(rng, 0.0, 3, 10) == 3

    def test_probability_one_returns_maximum(self):
        rng = make_rng(0)
        assert sample_truncated_geometric(rng, 1.0, 3, 10) == 10

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            sample_truncated_geometric(make_rng(0), 0.5, 5, 3)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            sample_truncated_geometric(make_rng(0), 1.5, 0, 3)


class TestLatentScaledDuration:
    def test_mean_scales_with_latent(self):
        model = LatentScaledDuration(base=1.0, scale_per_unit=0.5)
        assert model.mean(0.0) == 1.0
        assert model.mean(10.0) == 6.0

    def test_samples_correlate_with_latent(self):
        model = LatentScaledDuration(base=0.5, scale_per_unit=1.0, noise_sigma=0.2)
        rng = make_rng(0)
        low = np.mean([model.sample(rng, 1.0) for _ in range(300)])
        high = np.mean([model.sample(rng, 20.0) for _ in range(300)])
        assert high > low * 5

    def test_negative_latent_rejected(self):
        model = LatentScaledDuration(base=1.0)
        with pytest.raises(ValueError):
            model.sample(make_rng(0), -1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatentScaledDuration(base=-1.0)


class TestQuery:
    def test_invalid_difficulty_rejected(self):
        with pytest.raises(ValueError):
            Query(query_id=0, size=1.0, difficulty=2.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Query(query_id=0, size=-1.0, difficulty=0.5)


class TestDatasets:
    @pytest.mark.parametrize(
        "dataset_cls,expected_size",
        [
            (SyntheticSequenceDataset, 500),
            (MbppLikeDataset, 974),
            (HotpotQaLikeDataset, 1200),
            (TaskBenchLikeDataset, 2000),
        ],
    )
    def test_default_sizes(self, dataset_cls, expected_size):
        assert len(dataset_cls()) == expected_size

    def test_deterministic_generation(self):
        a = SyntheticSequenceDataset(size=50, seed=7)
        b = SyntheticSequenceDataset(size=50, seed=7)
        assert [q.size for q in a.queries] == [q.size for q in b.queries]

    def test_sequence_lengths_in_paper_range(self):
        dataset = SyntheticSequenceDataset()
        sizes = [q.size for q in dataset.queries]
        assert min(sizes) >= 16
        assert max(sizes) <= 64

    def test_taskbench_plan_sizes_in_range(self):
        dataset = TaskBenchLikeDataset()
        sizes = [q.size for q in dataset.queries]
        assert min(sizes) >= 1
        assert max(sizes) <= 8

    def test_hotpot_hops_in_range(self):
        dataset = HotpotQaLikeDataset()
        sizes = [q.size for q in dataset.queries]
        assert min(sizes) >= 2
        assert max(sizes) <= 6

    def test_sampling_uses_rng(self):
        dataset = MbppLikeDataset(size=100)
        rng = make_rng(0)
        ids = {dataset.sample(rng).query_id for _ in range(50)}
        assert len(ids) > 5

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSequenceDataset(size=0)

    def test_indexing(self):
        dataset = MbppLikeDataset(size=10)
        assert dataset[0].query_id == 0
