"""Tier-1 gate: the invariant linter must pass on the whole repository.

This is the test that makes ``repro.analysis`` a CI gate rather than a
convention document: any unmarked COW mutation, unseeded RNG, stray wall
clock / deepcopy, nondeterministic decision-path iteration, or unaudited
snapshot site introduced anywhere in ``src`` or ``tests`` fails here (and in
the dedicated ``invariant-lint`` CI job, which runs the same scan as a
standalone command).
"""

from pathlib import Path

from repro.analysis.core import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_repository_has_no_invariant_violations():
    report = analyze_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    rendered = "\n".join(f.render() for f in report.findings)
    assert not report.findings, f"invariant lint failed:\n{rendered}"
    # Sanity: the scan actually covered the tree (guards against a discovery
    # regression silently turning this gate into a no-op).
    assert report.files_scanned > 100
