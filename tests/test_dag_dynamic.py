"""Tests for dynamic-stage candidate sets and entropy."""

import pytest

from repro.dag.dynamic import DynamicPlan, StageCandidate, dynamic_stage_entropy


class TestStageCandidate:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            StageCandidate(name="tool", selection_probability=1.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            StageCandidate(name="tool", mean_duration=-1.0)


class TestDynamicPlan:
    def test_valid_plan(self):
        plan = DynamicPlan(
            selected=["a", "b"],
            dependencies=[("a", "b")],
            durations={"a": 1.0, "b": 2.0},
        )
        assert plan.num_stages == 2
        assert plan.total_duration == pytest.approx(3.0)

    def test_dependency_on_unselected_rejected(self):
        with pytest.raises(ValueError):
            DynamicPlan(selected=["a"], dependencies=[("a", "b")], durations={"a": 1.0})

    def test_missing_duration_rejected(self):
        with pytest.raises(ValueError):
            DynamicPlan(selected=["a"], durations={})

    def test_empty_plan(self):
        plan = DynamicPlan()
        assert plan.num_stages == 0
        assert plan.total_duration == 0.0


class TestDynamicStageEntropy:
    def test_deterministic_candidates_zero_node_entropy(self):
        candidates = [
            StageCandidate(name="a", selection_probability=1.0),
            StageCandidate(name="b", selection_probability=0.0),
        ]
        assert dynamic_stage_entropy(candidates, edge_probability=0.0) == pytest.approx(0.0)

    def test_maximal_uncertainty(self):
        candidates = [StageCandidate(name=f"c{i}", selection_probability=0.5) for i in range(3)]
        # 3 nodes at 1 bit each + 3 possible edges at 1 bit each.
        assert dynamic_stage_entropy(candidates, edge_probability=0.5) == pytest.approx(6.0)

    def test_entropy_increases_with_candidates(self):
        few = [StageCandidate(name="a", selection_probability=0.5)]
        many = [StageCandidate(name=f"c{i}", selection_probability=0.5) for i in range(4)]
        assert dynamic_stage_entropy(many, 0.5) > dynamic_stage_entropy(few, 0.5)

    def test_invalid_edge_probability(self):
        with pytest.raises(ValueError):
            dynamic_stage_entropy([], edge_probability=2.0)
