"""Tests for the open-loop arrival processes and the streaming job source."""

import itertools

import pytest

from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.workloads.arrivals import (
    BurstyProcess,
    DiurnalProcess,
    OpenLoopSpec,
    PoissonProcess,
    TraceReplayProcess,
    open_loop_jobs,
    superpose,
)
from repro.workloads.mixtures import default_applications


def head(process, count):
    return list(itertools.islice(process.times(), count))


class TestProcesses:
    @pytest.mark.parametrize(
        "process",
        [
            PoissonProcess(rate=2.0, seed=1),
            BurstyProcess(base_rate=1.0, burst_rate=8.0, seed=1),
            DiurnalProcess(mean_rate=2.0, period=600.0, seed=1),
        ],
    )
    def test_times_positive_and_sorted(self, process):
        times = head(process, 300)
        assert len(times) == 300
        assert all(t > 0 for t in times)
        assert times == sorted(times)

    @pytest.mark.parametrize(
        "process",
        [
            PoissonProcess(rate=2.0, seed=5),
            BurstyProcess(base_rate=1.0, burst_rate=8.0, seed=5),
            DiurnalProcess(mean_rate=2.0, period=600.0, seed=5),
        ],
    )
    def test_replayable(self, process):
        assert head(process, 100) == head(process, 100)

    def test_poisson_rate_roughly_matches(self):
        times = head(PoissonProcess(rate=4.0, seed=3), 4000)
        empirical = len(times) / times[-1]
        assert empirical == pytest.approx(4.0, rel=0.1)

    def test_bursty_interleaves_fast_and_slow_phases(self):
        times = head(BurstyProcess(base_rate=0.5, burst_rate=50.0, seed=2), 2000)
        gaps = sorted(b - a for a, b in zip(times, times[1:], strict=False))
        # The gap distribution must mix burst gaps (~0.02s) and normal-phase
        # gaps (~2s) — a single-rate Poisson cannot produce that spread.
        assert gaps[len(gaps) // 2] < 0.1  # bursts dominate the arrival count
        assert gaps[-1] > 1.0  # but slow-phase gaps are present too

    def test_diurnal_rate_oscillates(self):
        process = DiurnalProcess(mean_rate=2.0, amplitude=1.0, period=100.0, seed=2)
        assert process.rate_at(25.0) == pytest.approx(4.0)
        assert process.rate_at(75.0) == pytest.approx(0.0)

    def test_trace_replay_and_validation(self):
        assert head(TraceReplayProcess(trace=(0.5, 1.0, 4.0)), 10) == [0.5, 1.0, 4.0]
        with pytest.raises(ValueError):
            TraceReplayProcess(trace=(1.0, 0.5))
        with pytest.raises(ValueError):
            TraceReplayProcess(trace=(-1.0,))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PoissonProcess(rate=0.0)
        with pytest.raises(ValueError):
            BurstyProcess(base_rate=1.0, burst_rate=-1.0)
        with pytest.raises(ValueError):
            DiurnalProcess(mean_rate=1.0, amplitude=1.5)


class TestCombinators:
    def test_take_caps_count(self):
        assert len(head(PoissonProcess(rate=5.0, seed=1).take(7), 100)) == 7

    def test_until_caps_horizon(self):
        times = head(PoissonProcess(rate=5.0, seed=1).until(2.0), 1000)
        assert times
        assert all(t <= 2.0 for t in times)

    def test_combinators_compose(self):
        times = head(PoissonProcess(rate=5.0, seed=1).until(100.0).take(3), 100)
        assert len(times) == 3

    def test_superpose_merges_streams(self):
        merged = superpose(
            TraceReplayProcess(trace=(1.0, 3.0)),
            TraceReplayProcess(trace=(2.0, 4.0)),
        )
        assert head(merged, 10) == [1.0, 2.0, 3.0, 4.0]

    def test_superpose_requires_processes(self):
        with pytest.raises(ValueError):
            superpose()


class TestOpenLoopJobs:
    def test_jobs_are_lazy_and_capped(self):
        stream = open_loop_jobs(PoissonProcess(rate=2.0, seed=4), seed=4, max_jobs=25)
        jobs = list(stream)
        assert len(jobs) == 25
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)
        assert len({j.job_id for j in jobs}) == 25

    def test_horizon_cap(self):
        jobs = list(open_loop_jobs(PoissonProcess(rate=2.0, seed=4), seed=4, horizon=10.0))
        assert jobs
        assert all(j.arrival_time <= 10.0 for j in jobs)

    def test_deterministic_replay(self):
        spec = OpenLoopSpec(process=PoissonProcess(rate=2.0, seed=4), seed=4, max_jobs=15)
        first = [(j.job_id, j.arrival_time, j.application) for j in spec.jobs()]
        second = [(j.job_id, j.arrival_time, j.application) for j in spec.jobs()]
        assert first == second

    def test_application_subset_respected(self):
        jobs = list(
            open_loop_jobs(
                PoissonProcess(rate=2.0, seed=4),
                application_names=["web_search"],
                seed=4,
                max_jobs=10,
            )
        )
        assert {j.application for j in jobs} == {"web_search"}

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError, match="missing applications"):
            list(
                open_loop_jobs(
                    PoissonProcess(rate=1.0, seed=0),
                    application_names=["nope"],
                    max_jobs=1,
                )
            )

    def test_engine_consumes_stream_end_to_end(self):
        spec = OpenLoopSpec(process=PoissonProcess(rate=2.0, seed=6), seed=6, max_jobs=40)
        cluster = Cluster(
            ClusterConfig(num_regular_executors=6, num_llm_executors=3, max_batch_size=8)
        )
        engine = SimulationEngine(
            spec.jobs(default_applications()), FcfsScheduler(), cluster=cluster
        )
        metrics = engine.run()
        assert len(metrics.job_completion_times) == 40
