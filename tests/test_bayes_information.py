"""Tests for entropy and mutual-information calculations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayes.cpd import TabularCPD
from repro.bayes.factor import DiscreteFactor
from repro.bayes.information import (
    binary_entropy,
    conditional_mutual_information,
    entropy_of_distribution,
    factor_entropy,
    mutual_information,
)
from repro.bayes.network import DiscreteBayesianNetwork


class TestEntropy:
    def test_uniform_entropy_is_log2_n(self):
        assert entropy_of_distribution([0.25] * 4) == pytest.approx(2.0)

    def test_point_mass_entropy_zero(self):
        assert entropy_of_distribution([1.0, 0.0, 0.0]) == pytest.approx(0.0)

    def test_unnormalised_input_is_normalised(self):
        assert entropy_of_distribution([1.0, 1.0]) == pytest.approx(1.0)

    def test_empty_distribution(self):
        assert entropy_of_distribution([]) == 0.0

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            entropy_of_distribution([-0.1, 1.1])

    def test_binary_entropy_extremes(self):
        assert binary_entropy(0.0) == pytest.approx(0.0)
        assert binary_entropy(1.0) == pytest.approx(0.0)
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_binary_entropy_out_of_range(self):
        with pytest.raises(ValueError):
            binary_entropy(1.2)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20))
    @settings(max_examples=80)
    def test_entropy_bounded_by_log_cardinality(self, weights):
        value = entropy_of_distribution(weights)
        assert -1e-9 <= value <= np.log2(len(weights)) + 1e-9


class TestMutualInformation:
    def make_joint(self, values):
        return DiscreteFactor(["x", "y"], {"x": 2, "y": 2}, np.asarray(values, dtype=float))

    def test_independent_variables_zero_mi(self):
        joint = self.make_joint([[0.25, 0.25], [0.25, 0.25]])
        assert mutual_information(joint, ["x"], ["y"]) == pytest.approx(0.0, abs=1e-9)

    def test_perfectly_dependent_variables_one_bit(self):
        joint = self.make_joint([[0.5, 0.0], [0.0, 0.5]])
        assert mutual_information(joint, ["x"], ["y"]) == pytest.approx(1.0)

    def test_overlapping_groups_raise(self):
        joint = self.make_joint([[0.25, 0.25], [0.25, 0.25]])
        with pytest.raises(ValueError):
            mutual_information(joint, ["x"], ["x"])

    def test_missing_variable_raises(self):
        joint = self.make_joint([[0.25, 0.25], [0.25, 0.25]])
        with pytest.raises(ValueError):
            mutual_information(joint, ["x"], ["z"])

    def test_factor_entropy_matches_flat_entropy(self):
        joint = self.make_joint([[0.1, 0.2], [0.3, 0.4]])
        assert factor_entropy(joint) == pytest.approx(
            entropy_of_distribution([0.1, 0.2, 0.3, 0.4])
        )

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4),
    )
    @settings(max_examples=80)
    def test_mi_non_negative_and_bounded(self, weights):
        values = np.asarray(weights).reshape(2, 2)
        joint = self.make_joint(values)
        mi = mutual_information(joint, ["x"], ["y"])
        h_x = factor_entropy(joint.marginalize(["y"]).normalize())
        h_y = factor_entropy(joint.marginalize(["x"]).normalize())
        assert mi >= 0.0
        assert mi <= min(h_x, h_y) + 1e-6


class TestConditionalMutualInformation:
    def build_network(self):
        """x -> y, x -> z: y and z are dependent only through x."""
        net = DiscreteBayesianNetwork()
        for name in ("x", "y", "z"):
            net.add_node(name, 2)
        net.add_edge("x", "y")
        net.add_edge("x", "z")
        net.set_cpd(TabularCPD.from_marginal("x", [0.5, 0.5]))
        noisy_copy = np.array([[0.9, 0.1], [0.1, 0.9]])
        net.set_cpd(TabularCPD("y", 2, noisy_copy, ["x"], {"x": 2}))
        net.set_cpd(TabularCPD("z", 2, noisy_copy, ["x"], {"x": 2}))
        return net

    def test_source_informative_about_targets(self):
        net = self.build_network()
        mi = conditional_mutual_information(net, ["y", "z"], "x")
        assert mi > 0.5

    def test_conditioning_on_source_parent_reduces_mi(self):
        net = self.build_network()
        # Once x is known, y carries almost no extra information about z.
        mi_given_x = conditional_mutual_information(net, ["z"], "y", evidence={"x": 1})
        mi_without = conditional_mutual_information(net, ["z"], "y")
        assert mi_given_x < mi_without

    def test_source_in_evidence_returns_zero(self):
        net = self.build_network()
        assert conditional_mutual_information(net, ["y"], "x", evidence={"x": 0}) == 0.0

    def test_no_remaining_targets_returns_zero(self):
        net = self.build_network()
        assert conditional_mutual_information(net, ["x"], "x") == 0.0
        assert conditional_mutual_information(net, ["y"], "x", evidence={"y": 1}) == 0.0
