"""Tests for the cluster (executor pools and placement)."""

import pytest

from repro.dag.task import Task, TaskType
from repro.simulator.cluster import Cluster, ClusterConfig


def regular_task(work=1.0):
    return Task(job_id="j", stage_id="s", task_type=TaskType.REGULAR, work=work)


def llm_task(work=1.0):
    return Task(job_id="j", stage_id="s", task_type=TaskType.LLM, work=work)


class TestClusterConfig:
    def test_defaults_valid(self):
        config = ClusterConfig()
        assert config.num_llm_executors >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_regular_executors": 0},
            {"num_llm_executors": 0},
            {"max_batch_size": 0},
            {"latency_slope": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)


class TestPlacement:
    def make_cluster(self):
        return Cluster(ClusterConfig(num_regular_executors=2, num_llm_executors=2, max_batch_size=2))

    def test_capacity_accounting(self):
        cluster = self.make_cluster()
        assert cluster.free_regular_slots() == 2
        assert cluster.free_llm_slots() == 4

    def test_regular_placement_until_full(self):
        cluster = self.make_cluster()
        assert cluster.assign_regular_task(regular_task(), 0.0) is not None
        assert cluster.assign_regular_task(regular_task(), 0.0) is not None
        assert cluster.assign_regular_task(regular_task(), 0.0) is None
        assert cluster.free_regular_slots() == 0

    def test_llm_placement_is_least_loaded(self):
        cluster = self.make_cluster()
        first = cluster.assign_llm_task(llm_task(), 0.0)
        second = cluster.assign_llm_task(llm_task(), 0.0)
        assert first != second  # balanced across the two executors

    def test_llm_placement_until_full(self):
        cluster = self.make_cluster()
        for _ in range(4):
            assert cluster.assign_llm_task(llm_task(), 0.0) is not None
        assert cluster.assign_llm_task(llm_task(), 0.0) is None

    def test_wrong_task_type_rejected(self):
        cluster = self.make_cluster()
        with pytest.raises(ValueError):
            cluster.assign_regular_task(llm_task(), 0.0)
        with pytest.raises(ValueError):
            cluster.assign_llm_task(regular_task(), 0.0)


class TestTimeKeeping:
    def test_next_completion_across_pools(self):
        cluster = Cluster(ClusterConfig(num_regular_executors=1, num_llm_executors=1, max_batch_size=2, latency_slope=0.0))
        cluster.assign_regular_task(regular_task(work=5.0), 0.0)
        cluster.assign_llm_task(llm_task(work=2.0), 0.0)
        completion = cluster.next_completion()
        assert completion is not None
        time, task, executor_id = completion
        assert time == pytest.approx(2.0)
        assert task.task_type is TaskType.LLM
        assert executor_id.startswith("llm")

    def test_next_completion_none_when_idle(self):
        cluster = Cluster(ClusterConfig())
        assert cluster.next_completion() is None

    def test_utilization(self):
        cluster = Cluster(ClusterConfig(num_regular_executors=1, num_llm_executors=1, max_batch_size=2))
        cluster.assign_regular_task(regular_task(work=2.0), 0.0)
        executor = cluster.regular_executors[0]
        executor.finish_current(2.0)
        util = cluster.utilization(horizon=4.0)
        assert util["regular"] == pytest.approx(0.5)
        assert util["llm"] == 0.0

    def test_zero_horizon_utilization(self):
        cluster = Cluster(ClusterConfig())
        assert cluster.utilization(0.0) == {"regular": 0.0, "llm": 0.0}
