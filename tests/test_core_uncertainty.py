"""Tests for the entropy-based uncertainty quantification façade."""

import pytest

from repro.core.profiler import BayesianProfiler
from repro.core.uncertainty import (
    UncertaintyQuantifier,
    llm_stage_entropy,
    regular_stage_entropy,
)
from repro.utils.rng import make_rng
from repro.workloads import SequenceSortingApplication, TaskAutomationApplication


@pytest.fixture(scope="module")
def quantifier():
    profiler = BayesianProfiler()
    profiler.fit(
        [SequenceSortingApplication(), TaskAutomationApplication()],
        n_profile_jobs=80,
        seed=2,
    )
    return UncertaintyQuantifier(profiler)


class TestStageEntropyFormulas:
    def test_regular_stage_entropy_is_bernoulli(self):
        assert regular_stage_entropy(0.5) == pytest.approx(1.0)
        assert regular_stage_entropy(1.0) == pytest.approx(0.0)

    def test_llm_stage_entropy_over_intervals(self):
        # 3 duration intervals + non-execution, uniform -> 2 bits.
        assert llm_stage_entropy([0.25, 0.25, 0.25, 0.25]) == pytest.approx(2.0)
        assert llm_stage_entropy([1.0, 0.0, 0.0]) == pytest.approx(0.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            regular_stage_entropy(1.2)


class TestQuantifier:
    def test_stage_entropy_positive_before_execution(self, quantifier):
        job = SequenceSortingApplication().sample_job("j0", 0.0, make_rng(0))
        entropy = quantifier.stage_entropy(job, job.stage("ss_split"))
        assert entropy > 0

    def test_stage_entropy_zero_after_completion(self, quantifier):
        job = SequenceSortingApplication().sample_job("j0", 0.0, make_rng(1))
        stage = job.stage("ss_split")
        stage.mark_running()
        stage.tasks[0].mark_running(0.0, "e")
        stage.tasks[0].mark_finished(1.0)
        job.notify_stage_finished("ss_split", 1.0)
        assert quantifier.stage_entropy(job, stage) == 0.0

    def test_dynamic_stage_entropy_from_candidates(self, quantifier):
        app = TaskAutomationApplication()
        job = app.sample_job("j0", 0.0, make_rng(2))
        entropy = quantifier.stage_entropy(job, job.stage(app.DYNAMIC_KEY))
        assert entropy > 1.0  # several uncertain candidates plus edges

    def test_uncertainty_reduction_and_flag(self, quantifier):
        app = TaskAutomationApplication()
        job = app.sample_job("j0", 0.0, make_rng(3))
        plan_stage = job.stage(app.PLAN_KEY)
        assert quantifier.is_uncertainty_reducing(job, plan_stage)
        assert quantifier.uncertainty_reduction(job, plan_stage) > 0
