"""Tests for runtime tasks."""

import pytest

from repro.dag.task import Task, TaskState, TaskType


def make_task(work=10.0, task_type=TaskType.LLM):
    return Task(job_id="j0", stage_id="s0", task_type=task_type, work=work)


class TestConstruction:
    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            make_task(work=-1.0)

    def test_unique_uids(self):
        assert make_task().uid != make_task().uid

    def test_key_format(self):
        task = Task(job_id="jobA", stage_id="stage3", task_type=TaskType.REGULAR, work=1.0, index=2)
        assert task.key() == "jobA/stage3/2"

    def test_is_llm(self):
        assert make_task(task_type=TaskType.LLM).is_llm
        assert not make_task(task_type=TaskType.REGULAR).is_llm


class TestLifecycle:
    def test_normal_lifecycle(self):
        task = make_task(work=5.0)
        assert task.state is TaskState.PENDING
        task.mark_running(1.0, "exec-0")
        assert task.state is TaskState.RUNNING
        assert task.start_time == 1.0
        assert task.executor_id == "exec-0"
        task.advance(2.0)
        assert task.remaining_work == pytest.approx(3.0)
        task.advance(3.0)
        assert task.remaining_work == 0.0
        task.mark_finished(6.0)
        assert task.is_finished
        assert task.finish_time == 6.0

    def test_cannot_start_twice(self):
        task = make_task()
        task.mark_running(0.0, "e")
        with pytest.raises(RuntimeError):
            task.mark_running(1.0, "e")

    def test_cannot_finish_pending(self):
        with pytest.raises(RuntimeError):
            make_task().mark_finished(1.0)

    def test_cannot_advance_pending(self):
        with pytest.raises(RuntimeError):
            make_task().advance(1.0)

    def test_advance_negative_rejected(self):
        task = make_task()
        task.mark_running(0.0, "e")
        with pytest.raises(ValueError):
            task.advance(-1.0)

    def test_progress_capped_at_work(self):
        task = make_task(work=2.0)
        task.mark_running(0.0, "e")
        task.advance(100.0)
        assert task.progress == pytest.approx(2.0)
        assert task.remaining_work == 0.0

    def test_finish_sets_full_progress(self):
        task = make_task(work=4.0)
        task.mark_running(0.0, "e")
        task.advance(1.0)
        task.mark_finished(9.0)
        assert task.progress == pytest.approx(4.0)
