"""Tests for the LLMSched scheduler (Algorithm 1)."""

import pytest

from repro.core.llmsched import LLMSchedConfig, LLMSchedScheduler
from repro.core.profiler import BayesianProfiler
from repro.schedulers.base import SchedulingContext
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.registry import create_scheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.utils.rng import make_rng
from repro.workloads import (
    CodeGenerationApplication,
    SequenceSortingApplication,
    TaskAutomationApplication,
    WebSearchApplication,
)
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, default_applications, generate_workload


@pytest.fixture(scope="module")
def profiler():
    instance = BayesianProfiler()
    instance.fit(
        [
            SequenceSortingApplication(),
            CodeGenerationApplication(),
            WebSearchApplication(),
            TaskAutomationApplication(),
        ],
        n_profile_jobs=80,
        seed=3,
    )
    return instance


def make_context(jobs, time=0.0):
    return SchedulingContext(
        time=time, jobs=list(jobs), free_regular_slots=4, free_llm_slots=8, llm_batch_sizes=[1, 1]
    )


class TestConfig:
    def test_defaults_valid(self):
        config = LLMSchedConfig()
        assert 0 <= config.epsilon <= 1
        assert 0 <= config.sampling_ratio <= 1

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            LLMSchedConfig(epsilon=1.5)
        with pytest.raises(ValueError):
            LLMSchedConfig(sampling_ratio=-0.1)


class TestSchedulingBehaviour:
    def test_all_schedulable_tasks_are_returned(self, profiler):
        rng = make_rng(0)
        jobs = [
            SequenceSortingApplication().sample_job("a", 0.0, rng),
            CodeGenerationApplication().sample_job("b", 0.0, rng),
        ]
        scheduler = LLMSchedScheduler(profiler)
        decision = scheduler.schedule(make_context(jobs))
        schedulable = {t.uid for j in jobs for t in j.schedulable_tasks()}
        returned = {t.uid for t in decision.llm_tasks + decision.regular_tasks}
        assert returned == schedulable

    def test_no_duplicate_tasks_in_preferences(self, profiler):
        rng = make_rng(1)
        jobs = [TaskAutomationApplication().sample_job(f"j{i}", 0.0, rng) for i in range(4)]
        scheduler = LLMSchedScheduler(profiler, LLMSchedConfig(epsilon=0.5))
        decision = scheduler.schedule(make_context(jobs))
        uids = [t.uid for t in decision.llm_tasks + decision.regular_tasks]
        assert len(uids) == len(set(uids))

    def test_shorter_job_preferred_under_pure_exploitation(self, profiler):
        """With epsilon=0 LLMSched degenerates to SRTF on posterior estimates."""
        rng = make_rng(2)
        short_job = WebSearchApplication().sample_job("short", 0.0, rng)
        long_job = SequenceSortingApplication().sample_job("long", 0.0, rng)
        scheduler = LLMSchedScheduler(profiler, LLMSchedConfig(epsilon=0.0))
        decision = scheduler.schedule(make_context([long_job, short_job]))
        assert decision.llm_tasks[0].job_id == "short"

    def test_empty_context_returns_empty_decision(self, profiler):
        scheduler = LLMSchedScheduler(profiler)
        assert scheduler.schedule(make_context([])).total_tasks == 0

    def test_unprofiled_application_gets_fallback_estimate(self, profiler):
        from repro.dag.job import Job
        from repro.dag.stage import Stage, StageSpec, StageType

        job = Job("x", "unknown_app", 0.0)
        job.add_stage(Stage(StageSpec("s", StageType.LLM), "x", [1.0]))
        job.finalize()
        scheduler = LLMSchedScheduler(profiler)
        estimate = scheduler.estimate_remaining(job, make_context([job]))
        assert estimate > 0
        decision = scheduler.schedule(make_context([job]))
        assert decision.total_tasks == 1

    def test_exploration_samples_fraction_of_tasks_first(self, profiler):
        """With epsilon=1 the first scheduled stage comes from the exploration
        list and only a sampled fraction of a multi-task stage is released
        ahead of the rest."""
        rng = make_rng(3)
        job = SequenceSortingApplication().sample_job("a", 0.0, rng)
        scheduler = LLMSchedScheduler(
            profiler, LLMSchedConfig(epsilon=1.0, sampling_ratio=0.34, seed=1)
        )
        decision = scheduler.schedule(make_context([job]))
        # All tasks still appear exactly once overall.
        schedulable = {t.uid for t in job.schedulable_tasks()}
        returned = [t.uid for t in decision.llm_tasks + decision.regular_tasks]
        assert set(returned) == schedulable
        assert len(returned) == len(set(returned))

    def test_ablation_flags_change_behaviour(self, profiler):
        rng = make_rng(4)
        jobs = [SequenceSortingApplication().sample_job(f"j{i}", 0.0, rng) for i in range(3)]
        full = LLMSchedScheduler(profiler, LLMSchedConfig(seed=0))
        no_unc = LLMSchedScheduler(profiler, LLMSchedConfig(use_uncertainty=False, seed=0))
        no_bn = LLMSchedScheduler(profiler, LLMSchedConfig(use_bn=False, seed=0))
        for scheduler in (full, no_unc, no_bn):
            decision = scheduler.schedule(make_context(jobs))
            assert decision.total_tasks > 0
        # Without BN the estimates equal the historical application mean.
        job = jobs[0]
        mean_total = profiler.profile_for("sequence_sorting").mean_total_duration
        assert no_bn.estimate_remaining(job, make_context(jobs)) == pytest.approx(
            mean_total, rel=1e-6
        )


class TestEndToEnd:
    def test_runs_mixed_workload_to_completion(self, profiler):
        apps = default_applications()
        full_profiler = BayesianProfiler().fit(apps.values(), n_profile_jobs=60, seed=5)
        spec = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=20, arrival_rate=1.0, seed=9)
        jobs = generate_workload(spec, applications=apps)
        scheduler = LLMSchedScheduler(full_profiler, LLMSchedConfig(seed=0))
        cluster = Cluster(ClusterConfig(num_regular_executors=6, num_llm_executors=3, max_batch_size=8))
        metrics = SimulationEngine(jobs, scheduler, cluster=cluster, workload_name="mixed").run()
        assert len(metrics.job_completion_times) == len(jobs)
        assert metrics.average_jct > 0

    def test_registry_constructs_llmsched(self, profiler):
        scheduler = create_scheduler("llmsched", profiler=profiler)
        assert isinstance(scheduler, LLMSchedScheduler)
        assert scheduler.name == "llmsched"
