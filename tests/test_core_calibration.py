"""Tests for batching-aware duration calibration (Eq. 2)."""

import pytest

from repro.core.calibration import BatchingAwareCalibrator
from repro.schedulers.base import SchedulingContext
from repro.simulator.latency import DecodingLatencyProfile


class TestBatchingAwareCalibrator:
    def test_identity_at_profiled_batch(self):
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.1))
        assert calibrator.calibrate(10.0, 1) == pytest.approx(10.0)

    def test_larger_batch_inflates_duration(self):
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.1))
        assert calibrator.calibrate(10.0, 6) == pytest.approx(15.0)

    def test_profiled_batch_size_respected(self):
        profile = DecodingLatencyProfile(slope=0.1)
        calibrator = BatchingAwareCalibrator(profile, profiled_batch_size=6)
        # Estimate recorded at batch 6, target batch 1: duration shrinks.
        assert calibrator.calibrate(15.0, 1) == pytest.approx(10.0)

    def test_fractional_target_batch_rounded(self):
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.1))
        assert calibrator.calibrate(10.0, 2.4) == pytest.approx(
            calibrator.calibrate(10.0, 2)
        )

    def test_context_helper_uses_average_batch(self):
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.1))
        context = SchedulingContext(time=0.0, jobs=[], llm_batch_sizes=[4, 8])
        assert calibrator.calibrate_for_context(10.0, context) == pytest.approx(
            calibrator.calibrate(10.0, 6)
        )

    def test_context_helper_ignores_idle_executors(self):
        # Underloaded cluster: one executor runs a batch of 4, three sit
        # idle.  The calibrated duration must reflect the busy batch (4),
        # not a zero-deflated fleet average (old behavior: batch 1).
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.1))
        context = SchedulingContext(time=0.0, jobs=[], llm_batch_sizes=[4, 0, 0, 0])
        assert calibrator.calibrate_for_context(10.0, context) == pytest.approx(
            calibrator.calibrate(10.0, 4)
        )
        idle = SchedulingContext(time=0.0, jobs=[], llm_batch_sizes=[0, 0])
        assert calibrator.calibrate_for_context(10.0, idle) == pytest.approx(10.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            BatchingAwareCalibrator(profiled_batch_size=0)
        with pytest.raises(ValueError):
            BatchingAwareCalibrator().calibrate(-1.0, 2)
