"""Framework-level tests for ``repro.analysis``: pragmas, selection, CLI.

The rule-by-rule behavior is covered in ``test_analysis_rules.py``; here we
pin the machinery those rules ride on — pragma parsing (including the
docstring false-positive regression), ``lint-as`` scoping, ``--select`` /
``--ignore`` filtering, discovery excludes, the JSON schema, and the CLI
exit-code contract.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.core import (
    JSON_SCHEMA_VERSION,
    analyze_paths,
    iter_python_files,
    load_module,
    rule_codes,
    select_rules,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"
BROKEN = FIXTURES / "broken_engine.py"
CLEAN = FIXTURES / "rep001_clean.py"


# --------------------------------------------------------------------------- #
# Pragma parsing
# --------------------------------------------------------------------------- #
class TestPragmas:
    def test_line_exemption_parsed(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "t = time.time()  # repro: REP003-exempt -- justified\n"
        )
        module = load_module(path)
        assert module.is_exempt(2, "REP003")
        assert not module.is_exempt(2, "REP004")
        assert not module.is_exempt(1, "REP003")

    def test_multiple_codes_one_line(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # repro: REP003-exempt,REP004-exempt\n")
        module = load_module(path)
        assert module.is_exempt(1, "REP003")
        assert module.is_exempt(1, "REP004")

    def test_pragma_is_case_insensitive_in_code(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # repro: rep003-exempt\n")
        assert load_module(path).is_exempt(1, "REP003")

    def test_docstring_pragma_text_is_ignored(self, tmp_path):
        # Regression: pragma-shaped text inside string literals (e.g. the
        # framework's own docstrings) must not re-scope or exempt anything.
        path = tmp_path / "mod.py"
        path.write_text(
            '"""Docs showing `# repro: lint-as=src/repro/simulator/engine.py`\n'
            "and `# repro: REP003-exempt` as examples.\n"
            '"""\n'
            "x = 1\n"
        )
        module = load_module(path)
        assert module.scope_path.as_posix() == path.as_posix()
        assert module.exemptions == {}

    def test_lint_as_rescopes_fixture(self):
        module = load_module(BROKEN)
        assert module.scope_endswith("simulator/engine.py")
        assert module.in_src_repro
        # Reporting still uses the real file path.
        assert module.path.endswith("broken_engine.py")


# --------------------------------------------------------------------------- #
# Rule selection
# --------------------------------------------------------------------------- #
class TestSelection:
    def test_all_rule_codes_registered(self):
        assert rule_codes() == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
        ]

    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="REP999"):
            select_rules(select=["REP999"])

    def test_unknown_ignore_code_raises(self):
        with pytest.raises(ValueError, match="REP042"):
            select_rules(ignore=["REP042"])

    def test_select_filters_codes(self):
        report = analyze_paths([BROKEN], select=["REP002"])
        assert set(report.counts) == {"REP002"}

    def test_ignore_filters_codes(self):
        report = analyze_paths([BROKEN], ignore=["REP001"])
        assert report.counts and "REP001" not in report.counts

    def test_select_is_case_insensitive(self):
        report = analyze_paths([BROKEN], select=["rep003"])
        assert set(report.counts) == {"REP003"}


# --------------------------------------------------------------------------- #
# Discovery
# --------------------------------------------------------------------------- #
class TestDiscovery:
    def test_fixture_tree_excluded_from_directory_walks(self):
        files = iter_python_files([REPO_ROOT / "tests"])
        assert not any("fixtures/analysis" in f.as_posix() for f in files)

    def test_explicit_file_bypasses_excludes(self):
        files = iter_python_files([BROKEN])
        assert files == [BROKEN]

    def test_no_default_excludes_descends_into_fixtures(self):
        files = iter_python_files([REPO_ROOT / "tests"], use_default_excludes=False)
        assert any(f.name == "broken_engine.py" for f in files)

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files([REPO_ROOT / "no_such_dir"])

    def test_duplicate_paths_deduplicated(self):
        files = iter_python_files([BROKEN, BROKEN])
        assert len(files) == 1

    def test_syntax_error_becomes_rep000(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = analyze_paths([bad])
        assert [f.code for f in report.findings] == ["REP000"]
        assert "does not parse" in report.findings[0].message


# --------------------------------------------------------------------------- #
# Report schema
# --------------------------------------------------------------------------- #
class TestReport:
    def test_json_schema(self):
        report = analyze_paths([BROKEN])
        payload = json.loads(report.to_json())
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_scanned"] == 1
        assert set(payload["counts"]) == {
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
        }
        for finding in payload["findings"]:
            assert set(finding) == {"code", "path", "line", "col", "message"}
            assert finding["line"] >= 1

    def test_findings_sorted_by_location(self):
        report = analyze_paths([FIXTURES])
        assert report.findings == sorted(report.findings)


# --------------------------------------------------------------------------- #
# CLI contract
# --------------------------------------------------------------------------- #
class TestCli:
    def test_exit_zero_on_clean_file(self, capsys):
        assert main([str(CLEAN)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_exit_one_on_findings(self, capsys):
        assert main([str(BROKEN)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "broken_engine.py" in out

    def test_exit_two_on_unknown_code(self, capsys):
        assert main(["--select", "REP999", str(CLEAN)]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_exit_two_on_missing_path(self, capsys):
        assert main([str(REPO_ROOT / "definitely_missing")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_format(self, capsys):
        assert main(["--format", "json", str(BROKEN)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION

    def test_select_ignore_flags(self, capsys):
        assert main(["--select", "REP002,REP003", "--ignore", "REP003", str(BROKEN)]) == 1
        out = capsys.readouterr().out
        assert "REP002" in out and "REP003" not in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in rule_codes():
            assert code in out
