"""Tests for the decoding-latency profile and Eq. 2 calibration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.latency import DecodingLatencyProfile


class TestLinearProfile:
    def test_batch_one_is_unit_latency(self):
        assert DecodingLatencyProfile(slope=0.1).latency(1) == pytest.approx(1.0)

    def test_latency_grows_with_batch(self):
        profile = DecodingLatencyProfile(slope=0.1)
        assert profile.latency(5) == pytest.approx(1.4)
        assert profile.latency(9) > profile.latency(5)

    def test_speed_is_inverse_latency(self):
        profile = DecodingLatencyProfile(slope=0.25)
        assert profile.speed(5) == pytest.approx(1.0 / 2.0)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DecodingLatencyProfile().latency(0)

    def test_negative_slope_rejected(self):
        with pytest.raises(ValueError):
            DecodingLatencyProfile(slope=-0.1)

    def test_zero_slope_means_perfect_batching(self):
        profile = DecodingLatencyProfile(slope=0.0)
        assert profile.latency(32) == pytest.approx(1.0)


class TestTableProfile:
    def test_table_interpolation(self):
        profile = DecodingLatencyProfile(table={1: 0.02, 4: 0.03, 8: 0.05})
        assert profile.latency(1) == pytest.approx(1.0)
        assert profile.latency(4) == pytest.approx(1.5)
        assert profile.latency(2) == pytest.approx((1.0 + 1.5) / 2, rel=0.1)

    def test_table_must_include_batch_one(self):
        with pytest.raises(ValueError):
            DecodingLatencyProfile(table={2: 0.03})

    def test_table_rejects_invalid_entries(self):
        with pytest.raises(ValueError):
            DecodingLatencyProfile(table={1: 0.02, 0: 0.01})
        with pytest.raises(ValueError):
            DecodingLatencyProfile(table={1: -0.02})
        with pytest.raises(ValueError):
            DecodingLatencyProfile(table={})

    def test_from_measurements(self):
        profile = DecodingLatencyProfile.from_measurements({1: 0.025, 8: 0.04})
        assert profile.latency(8) == pytest.approx(1.6)


class TestCalibration:
    def test_same_batch_is_identity(self):
        profile = DecodingLatencyProfile(slope=0.1)
        assert profile.calibrate(10.0, 4, 4) == pytest.approx(10.0)

    def test_larger_target_batch_increases_duration(self):
        profile = DecodingLatencyProfile(slope=0.1)
        assert profile.calibrate(10.0, 1, 8) > 10.0

    def test_smaller_target_batch_decreases_duration(self):
        profile = DecodingLatencyProfile(slope=0.1)
        assert profile.calibrate(10.0, 8, 1) < 10.0

    def test_round_trip(self):
        profile = DecodingLatencyProfile(slope=0.2)
        there = profile.calibrate(7.0, 2, 6)
        back = profile.calibrate(there, 6, 2)
        assert back == pytest.approx(7.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            DecodingLatencyProfile().calibrate(-1.0, 1, 2)

    @given(
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60)
    def test_calibration_preserves_sign_and_monotonicity(self, slope, b_from, b_to):
        profile = DecodingLatencyProfile(slope=slope)
        calibrated = profile.calibrate(5.0, b_from, b_to)
        assert calibrated > 0
        if b_to > b_from:
            assert calibrated >= 5.0 - 1e-9
        elif b_to < b_from:
            assert calibrated <= 5.0 + 1e-9
