"""Property-style engine invariants, parametrized over all registered schedulers.

Checked on every run:

* **Work conservation** — at the end of every scheduling point, no slot is
  left free while a schedulable task of the matching type exists.  (Not
  asserted for Decima, which by design commits capacity to the single
  highest-scoring stage per invocation and fills the rest on later events.)
* **Monotone clock** — simulation time never decreases across scheduling
  points.
* **Completion** — every admitted job eventually completes, exactly once.
* **Determinism** — two runs with the same seed produce bit-identical
  per-job JCTs and makespan.
"""

import pytest

from repro.core.calibration import BatchingAwareCalibrator
from repro.core.llmsched import LLMSchedConfig, LLMSchedScheduler
from repro.core.profiler import BayesianProfiler
from repro.dag.task import TaskType
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.registry import available_schedulers, create_scheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.simulator.latency import DecodingLatencyProfile
from repro.workloads.mixtures import (
    WorkloadSpec,
    WorkloadType,
    default_applications,
    generate_workload,
)

SPEC = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=40, arrival_rate=1.5, seed=13)
CLUSTER = ClusterConfig(num_regular_executors=4, num_llm_executors=2, max_batch_size=4)

SCHEDULER_NAMES = available_schedulers(include_llmsched=True)

#: Decima intentionally schedules one stage per invocation (see
#: DecimaScheduler.schedule), so the point-wise work-conservation property
#: does not apply to it.
WORK_CONSERVING = [name for name in SCHEDULER_NAMES if name != "decima"]


@pytest.fixture(scope="module")
def applications():
    return default_applications()


@pytest.fixture(scope="module")
def priors(applications):
    return ApplicationPriors.from_applications(applications.values(), n_samples=40, seed=9)


@pytest.fixture(scope="module")
def profiler(applications):
    profiler = BayesianProfiler()
    profiler.fit(applications.values(), n_profile_jobs=40, seed=9)
    return profiler


def make_scheduler(name, priors, profiler):
    if name == "llmsched":
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.06))
        return LLMSchedScheduler(profiler, config=LLMSchedConfig(), calibrator=calibrator)
    return create_scheduler(name, priors=priors)


class InvariantCheckingEngine(SimulationEngine):
    """Asserts scheduling-point invariants while running."""

    def __init__(self, *args, check_work_conservation=True, **kwargs):
        super().__init__(*args, **kwargs)
        self.scheduling_point_times = []
        self.check_work_conservation = check_work_conservation

    def _dispatch(self):
        self.scheduling_point_times.append(self._time)
        super()._dispatch()
        if self.check_work_conservation:
            self._assert_work_conserving()

    def _assert_work_conserving(self):
        pending = [
            task
            for job in self._active_jobs.values()
            for task in job.schedulable_tasks()
        ]
        if self.cluster.free_regular_slots() > 0:
            stranded = [t for t in pending if t.task_type is TaskType.REGULAR]
            assert not stranded, (
                f"t={self._time:.3f}: {self.cluster.free_regular_slots()} regular slots idle "
                f"with {len(stranded)} schedulable regular tasks"
            )
        if self.cluster.free_llm_slots() > 0:
            stranded = [t for t in pending if t.task_type is TaskType.LLM]
            assert not stranded, (
                f"t={self._time:.3f}: {self.cluster.free_llm_slots()} LLM slots idle "
                f"with {len(stranded)} schedulable LLM tasks"
            )


def run_checked(name, priors, profiler, applications):
    jobs = generate_workload(SPEC, applications=applications)
    engine = InvariantCheckingEngine(
        jobs,
        make_scheduler(name, priors, profiler),
        cluster=Cluster(CLUSTER),
        workload_name=SPEC.workload_type.value,
        check_work_conservation=name in WORK_CONSERVING,
    )
    metrics = engine.run()
    return engine, metrics


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
class TestEngineInvariants:
    def test_work_conservation_and_monotone_clock(self, name, priors, profiler, applications):
        engine, _ = run_checked(name, priors, profiler, applications)
        times = engine.scheduling_point_times
        assert times, "engine never reached a scheduling point"
        assert all(a <= b for a, b in zip(times, times[1:], strict=False)), "clock moved backwards"

    def test_every_admitted_job_completes(self, name, priors, profiler, applications):
        _, metrics = run_checked(name, priors, profiler, applications)
        assert len(metrics.job_completion_times) == SPEC.num_jobs
        assert all(jct >= 0 for jct in metrics.job_completion_times.values())

    def test_bit_identical_reruns(self, name, priors, profiler, applications):
        _, first = run_checked(name, priors, profiler, applications)
        _, second = run_checked(name, priors, profiler, applications)
        # Exact equality on purpose: the engine must be deterministic down to
        # the last bit for golden traces to be meaningful.
        assert first.job_completion_times == second.job_completion_times
        assert first.makespan == second.makespan
        assert first.num_tasks_executed == second.num_tasks_executed
