"""Tests for runtime jobs (dependency propagation, reveals, skipping)."""

import pytest

from repro.dag.job import Job
from repro.dag.stage import Stage, StageSpec, StageState, StageType


def stage(job_id, stage_id, stage_type=StageType.REGULAR, durations=(1.0,), **kwargs):
    spec = StageSpec(stage_id=stage_id, stage_type=stage_type, name=stage_id)
    return Stage(spec, job_id=job_id, task_durations=durations, **kwargs)


def finish_stage(job, stage_id, time):
    """Drive a stage's tasks to completion and notify the job."""
    target = job.stage(stage_id)
    target.mark_running()
    for task in target.tasks:
        task.mark_running(time, "e")
        task.mark_finished(time)
    return job.notify_stage_finished(stage_id, time)


class TestConstruction:
    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Job("j", "app", -1.0)

    def test_duplicate_stage_rejected(self):
        job = Job("j", "app", 0.0)
        job.add_stage(stage("j", "a"))
        with pytest.raises(ValueError):
            job.add_stage(stage("j", "a"))

    def test_foreign_stage_rejected(self):
        job = Job("j", "app", 0.0)
        with pytest.raises(ValueError):
            job.add_stage(stage("other", "a"))

    def test_cycle_rejected(self):
        job = Job("j", "app", 0.0)
        for sid in "ab":
            job.add_stage(stage("j", sid))
        job.add_dependency("a", "b")
        with pytest.raises(ValueError):
            job.add_dependency("b", "a")

    def test_self_dependency_rejected(self):
        job = Job("j", "app", 0.0)
        job.add_stage(stage("j", "a"))
        with pytest.raises(ValueError):
            job.add_dependency("a", "a")

    def test_empty_job_cannot_finalize(self):
        with pytest.raises(ValueError):
            Job("j", "app", 0.0).finalize()

    def test_no_mutation_after_finalize(self):
        job = Job("j", "app", 0.0)
        job.add_stage(stage("j", "a"))
        job.finalize()
        with pytest.raises(RuntimeError):
            job.add_stage(stage("j", "b"))

    def test_methods_require_finalize(self):
        job = Job("j", "app", 0.0)
        job.add_stage(stage("j", "a"))
        with pytest.raises(RuntimeError):
            job.schedulable_stages()


def build_linear_job():
    """a -> b -> c, all regular, finalized."""
    job = Job("j", "app", 0.0)
    for sid in "abc":
        job.add_stage(stage("j", sid))
    job.add_dependency("a", "b")
    job.add_dependency("b", "c")
    job.finalize()
    return job


class TestDependencyPropagation:
    def test_roots_ready_after_finalize(self):
        job = build_linear_job()
        assert job.stage("a").state is StageState.READY
        assert job.stage("b").state is StageState.BLOCKED
        assert [s.stage_id for s in job.schedulable_stages()] == ["a"]

    def test_children_unlock_in_order(self):
        job = build_linear_job()
        finish_stage(job, "a", 1.0)
        assert job.stage("b").state is StageState.READY
        assert job.stage("c").state is StageState.BLOCKED
        finish_stage(job, "b", 2.0)
        finish_stage(job, "c", 3.0)
        assert job.is_finished
        assert job.jct == pytest.approx(3.0)

    def test_join_requires_all_parents(self):
        job = Job("j", "app", 0.0)
        for sid in "abc":
            job.add_stage(stage("j", sid))
        job.add_dependency("a", "c")
        job.add_dependency("b", "c")
        job.finalize()
        finish_stage(job, "a", 1.0)
        assert job.stage("c").state is StageState.BLOCKED
        finish_stage(job, "b", 2.0)
        assert job.stage("c").state is StageState.READY

    def test_topological_order_and_depth(self):
        job = build_linear_job()
        order = job.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")
        assert job.stage_depth("a") == 0
        assert job.stage_depth("c") == 2


class TestSkipping:
    def test_padded_chain_stages_skip_automatically(self):
        job = Job("j", "chain", 0.0)
        job.add_stage(stage("j", "iter0"))
        job.add_stage(stage("j", "iter1", will_execute=False, durations=(5.0,)))
        job.add_stage(stage("j", "iter2", will_execute=False, durations=(5.0,)))
        job.add_dependency("iter0", "iter1")
        job.add_dependency("iter1", "iter2")
        job.finalize()
        finish_stage(job, "iter0", 2.0)
        assert job.stage("iter1").state is StageState.SKIPPED
        assert job.stage("iter2").state is StageState.SKIPPED
        assert job.is_finished
        assert job.finish_time == pytest.approx(2.0)

    def test_skipped_stage_reports_zero_duration(self):
        job = Job("j", "chain", 0.0)
        job.add_stage(stage("j", "a"))
        job.add_stage(stage("j", "b", will_execute=False))
        job.add_dependency("a", "b")
        job.finalize()
        finish_stage(job, "a", 1.0)
        assert job.observed_durations()["b"] == 0.0


class TestRevealAndPlaceholders:
    def build_planning_job(self):
        """planner (LLM) -> {tool_a, tool_b hidden} -> dynamic placeholder."""
        job = Job("j", "planning", 0.0)
        job.add_stage(stage("j", "planner", StageType.LLM, durations=(2.0,)))
        job.add_stage(stage("j", "tool_a", durations=(1.0,), visible=False))
        job.add_stage(stage("j", "tool_b", durations=(1.5,), visible=False))
        job.add_stage(stage("j", "dyn", StageType.DYNAMIC, durations=()))
        job.add_dependency("planner", "tool_a")
        job.add_dependency("planner", "tool_b")
        job.add_dependency("tool_a", "dyn")
        job.add_dependency("tool_b", "dyn")
        job.add_reveal("planner", "tool_a")
        job.add_reveal("planner", "tool_b")
        job.finalize()
        return job

    def test_hidden_stages_not_schedulable_before_reveal(self):
        job = self.build_planning_job()
        schedulable = {s.stage_id for s in job.schedulable_stages()}
        assert schedulable == {"planner"}
        assert not job.stage("tool_a").visible

    def test_reveal_after_planner_finishes(self):
        job = self.build_planning_job()
        finish_stage(job, "planner", 2.0)
        assert job.stage("tool_a").visible
        assert job.stage("tool_b").visible
        schedulable = {s.stage_id for s in job.schedulable_stages()}
        assert schedulable == {"tool_a", "tool_b"}

    def test_placeholder_completes_when_inner_stages_finish(self):
        job = self.build_planning_job()
        finish_stage(job, "planner", 2.0)
        finish_stage(job, "tool_a", 3.0)
        assert not job.is_finished
        finish_stage(job, "tool_b", 4.0)
        assert job.stage("dyn").state is StageState.FINISHED
        assert job.is_finished
        assert job.jct == pytest.approx(4.0)

    def test_unknown_reveal_stage_rejected(self):
        job = Job("j", "app", 0.0)
        job.add_stage(stage("j", "a"))
        with pytest.raises(ValueError):
            job.add_reveal("a", "missing")


class TestGroundTruthViews:
    def test_true_total_and_remaining_work(self):
        job = Job("j", "app", 0.0)
        job.add_stage(stage("j", "a", durations=(2.0,)))
        job.add_stage(stage("j", "b", durations=(3.0,)))
        job.add_stage(stage("j", "skip", durations=(7.0,), will_execute=False))
        job.add_dependency("a", "b")
        job.add_dependency("b", "skip")
        job.finalize()
        assert job.true_total_work == pytest.approx(5.0)
        assert job.true_remaining_work() == pytest.approx(5.0)
        finish_stage(job, "a", 2.0)
        assert job.true_remaining_work() == pytest.approx(3.0)

    def test_observed_durations_only_for_complete_stages(self):
        job = build_linear_job()
        assert job.observed_durations() == {}
        finish_stage(job, "a", 1.0)
        assert job.observed_durations() == {"a": pytest.approx(1.0)}
