"""Dispatch tests: ``repro.api.run`` is bit-identical to the legacy paths.

The headline test replays every golden trace (all 8 registered schedulers)
through the declarative front door and compares the per-job JCTs and the
makespan **exactly** against ``tests/golden/`` — proving the API redesign
changed zero simulation behavior.  The remaining tests pin the legacy-shim
equivalences (single, open-loop, federated, sweeps), the uniform
:class:`~repro.api.Result` schema, and the ISSUE 5 bugfix: conflicting
``cluster_config`` + ``pools`` arguments now raise instead of silently
preferring pools.
"""

import json
import warnings
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro import api
from repro.api import (
    AsyncSection,
    ClusterSection,
    ExperimentSettings,
    PlacementSection,
    ScenarioSpec,
    SchedulerSection,
    WorkloadSection,
)
from repro.core.llmsched import LLMSchedConfig
from repro.dag.task import TaskType
from repro.schedulers.registry import available_schedulers
from repro.simulator.autoscaler import AutoscalerConfig
from repro.simulator.cluster import ClusterConfig
from repro.simulator.federation import MigrationConfig
from repro.simulator.pool import PoolSpec
from repro.workloads.arrivals import OpenLoopSpec, PoissonProcess
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, default_applications

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The exact preparation the golden traces were recorded with.
GOLDEN_SETTINGS = ExperimentSettings(profile_jobs=40, prior_samples=40, profiler_seed=9)
GOLDEN_WORKLOAD = WorkloadSection.closed_loop("mixed", num_jobs=20, arrival_rate=1.2, seed=7)
GOLDEN_CLUSTER = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)

TINY = ExperimentSettings(profile_jobs=30, prior_samples=15, llmsched=LLMSchedConfig(seed=0))


@pytest.fixture(scope="module")
def applications():
    return default_applications()


@pytest.fixture(scope="module")
def golden_priors(applications):
    return api.build_priors(applications, GOLDEN_SETTINGS)


@pytest.fixture(scope="module")
def golden_profiler(applications):
    return api.build_profiler(applications, GOLDEN_SETTINGS)


@pytest.fixture(scope="module")
def tiny_prepared(applications):
    return api.build_priors(applications, TINY), api.build_profiler(applications, TINY)


def golden_scenario(name):
    return ScenarioSpec(
        scheduler=SchedulerSection(name),
        workload=GOLDEN_WORKLOAD,
        cluster=ClusterSection(config=GOLDEN_CLUSTER),
        settings=GOLDEN_SETTINGS,
    )


class TestGoldenIdentity:
    @pytest.mark.parametrize("name", available_schedulers(include_llmsched=True))
    def test_api_run_matches_golden_trace(
        self, name, applications, golden_priors, golden_profiler
    ):
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        result = api.run(
            golden_scenario(name),
            applications=applications,
            priors=golden_priors,
            profiler=golden_profiler,
        )
        assert dict(sorted(result.metrics.job_completion_times.items())) == golden["jct"]
        assert result.metrics.makespan == golden["makespan"]
        assert result.metrics.num_tasks_executed == golden["num_tasks_executed"]

    def test_pure_spec_path_matches_golden_llmsched(self):
        """No overrides at all: priors/profiler built from the spec settings."""
        golden = json.loads((GOLDEN_DIR / "llmsched.json").read_text())
        result = api.run(golden_scenario("llmsched"))
        assert dict(sorted(result.metrics.job_completion_times.items())) == golden["jct"]
        assert result.metrics.makespan == golden["makespan"]

    def test_spec_survives_json_roundtrip_bit_identically(
        self, applications, golden_priors, golden_profiler
    ):
        spec = golden_scenario("fcfs")
        replayed = ScenarioSpec.from_json(spec.to_json())
        a = api.run(spec, applications=applications, priors=golden_priors)
        b = api.run(replayed, applications=applications, priors=golden_priors)
        assert a.metrics.job_completion_times == b.metrics.job_completion_times
        assert a.metrics.makespan == b.metrics.makespan


class TestLegacyShimEquivalence:
    @staticmethod
    @contextmanager
    def _quiet():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            yield

    def test_run_single_matches_api(self, applications, tiny_prepared):
        from repro.experiments.runner import run_single

        priors, profiler = tiny_prepared
        wspec = WorkloadSpec(WorkloadType.CHAIN, num_jobs=12, arrival_rate=1.0, seed=2)
        with self._quiet():
            legacy = run_single(
                "sjf", wspec, applications=applications, settings=TINY,
                priors=priors, profiler=profiler,
            )
        fresh = api.run(
            ScenarioSpec(
                scheduler=SchedulerSection("sjf"),
                workload=WorkloadSection.from_workload_spec(wspec),
                settings=TINY,
            ),
            applications=applications,
            priors=priors,
            profiler=profiler,
        )
        assert legacy.job_completion_times == fresh.metrics.job_completion_times
        assert legacy.makespan == fresh.metrics.makespan

    def test_open_loop_matches_api(self, applications, tiny_prepared):
        from repro.experiments.runner import run_single_open_loop

        priors, profiler = tiny_prepared
        ospec = OpenLoopSpec(process=PoissonProcess(rate=1.0, seed=5), seed=5, max_jobs=12)
        with self._quiet():
            legacy = run_single_open_loop(
                "fcfs", ospec, applications=applications, settings=TINY,
                priors=priors, profiler=profiler,
            )
        fresh = api.run(
            ScenarioSpec(
                workload=WorkloadSection.from_open_loop_spec(ospec), settings=TINY
            ),
            applications=applications,
        )
        assert legacy.job_completion_times == fresh.metrics.job_completion_times

    def test_federated_matches_api(self, applications, tiny_prepared):
        from repro.experiments.runner import run_federated

        priors, profiler = tiny_prepared
        ospec = OpenLoopSpec(
            process=PoissonProcess(rate=2.0, seed=5), seed=5, max_jobs=20, name="poisson"
        )
        config = ClusterConfig(num_regular_executors=6, num_llm_executors=2)
        migration = MigrationConfig(interval=20.0, imbalance_threshold=0.3)
        with self._quiet():
            legacy = run_federated(
                "fcfs", ospec, num_shards=2, cluster_config=config, migration=migration,
                applications=applications, settings=TINY, priors=priors, profiler=profiler,
            )
        fresh = api.run(
            ScenarioSpec(
                workload=WorkloadSection.from_open_loop_spec(ospec),
                cluster=ClusterSection(config=config, num_shards=2, migration=migration),
                settings=TINY,
            ),
            applications=applications,
        )
        assert legacy.job_completion_times == fresh.metrics.job_completion_times
        assert legacy.num_migrations == fresh.metrics.num_migrations
        assert fresh.is_federated

    def test_autoscaled_diurnal_matches_api(self, applications, tiny_prepared):
        from repro.experiments.runner import run_autoscaled_diurnal
        from repro.workloads.arrivals import DiurnalProcess

        priors, profiler = tiny_prepared
        ospec = OpenLoopSpec(
            process=DiurnalProcess(mean_rate=1.0, amplitude=0.9, period=300.0, seed=4),
            seed=4, max_jobs=25, name="diurnal",
        )
        pools = (
            PoolSpec("cpu", TaskType.REGULAR, 2, min_executors=2, max_executors=16),
            PoolSpec("gpu", TaskType.LLM, 1, max_batch_size=4, min_executors=1, max_executors=8),
        )
        autoscaler = AutoscalerConfig(interval=15.0, step=2)
        with self._quiet():
            legacy = run_autoscaled_diurnal(
                "fcfs", ospec, pools, autoscaler_config=autoscaler,
                applications=applications, settings=TINY, priors=priors, profiler=profiler,
            )
        fresh = api.run(
            ScenarioSpec(
                workload=WorkloadSection.from_open_loop_spec(ospec),
                cluster=ClusterSection(pools=pools),
                autoscaler=autoscaler,
                settings=TINY,
            ),
            applications=applications,
        )
        assert legacy.job_completion_times == fresh.metrics.job_completion_times
        assert legacy.scale_events == fresh.metrics.scale_events
        assert fresh.metrics.scale_events  # the diurnal peak actually resized pools

    def test_legacy_entry_points_warn(self):
        from repro.experiments.runner import run_single

        wspec = WorkloadSpec(WorkloadType.MIXED, num_jobs=5, arrival_rate=1.0, seed=1)
        with pytest.warns(DeprecationWarning, match="run_single is deprecated"):
            run_single("fcfs", wspec, settings=TINY)


class TestConflictBugfix:
    """ISSUE 5 satellite: cluster_config + pools used to silently prefer pools."""

    POOLS = (
        PoolSpec("cpu", TaskType.REGULAR, 4),
        PoolSpec("gpu", TaskType.LLM, 2, max_batch_size=4),
    )

    def test_run_single_raises_on_conflicting_cluster_args(self):
        from repro.experiments.runner import run_single

        wspec = WorkloadSpec(WorkloadType.MIXED, num_jobs=5, arrival_rate=1.0, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="not both"):
                run_single(
                    "fcfs", wspec, settings=TINY,
                    cluster_config=ClusterConfig(), pools=self.POOLS,
                )

    def test_run_single_open_loop_raises_on_conflicting_cluster_args(self):
        from repro.experiments.runner import run_single_open_loop

        ospec = OpenLoopSpec(process=PoissonProcess(rate=1.0, seed=1), seed=1, max_jobs=5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="not both"):
                run_single_open_loop(
                    "fcfs", ospec, settings=TINY,
                    cluster_config=ClusterConfig(), pools=self.POOLS,
                )

    def test_spec_validation_mirrors_the_check(self):
        with pytest.raises(ValueError, match="not both"):
            ClusterSection(config=ClusterConfig(), pools=self.POOLS)


class TestGridAndResult:
    def test_run_grid_matches_individual_runs(self, applications, tiny_prepared):
        priors, _ = tiny_prepared
        base = ScenarioSpec(
            workload=WorkloadSection.closed_loop("mixed", num_jobs=8, arrival_rate=1.0, seed=6),
            settings=TINY,
        )
        rows = api.run_grid(
            base,
            {"workload.arrival_rate": [0.8, 1.6], "scheduler.name": ["fcfs", "sjf"]},
            processes=1,
        )
        assert [o for o, _ in rows] == [
            {"workload.arrival_rate": 0.8, "scheduler.name": "fcfs"},
            {"workload.arrival_rate": 0.8, "scheduler.name": "sjf"},
            {"workload.arrival_rate": 1.6, "scheduler.name": "fcfs"},
            {"workload.arrival_rate": 1.6, "scheduler.name": "sjf"},
        ]
        solo = api.run(
            api.with_overrides(base, {"workload.arrival_rate": 1.6, "scheduler.name": "sjf"}),
            applications=applications,
            priors=priors,
        )
        assert rows[3][1].metrics.job_completion_times == solo.metrics.job_completion_times

    def test_run_grid_parallel_matches_serial(self):
        base = ScenarioSpec(
            workload=WorkloadSection.closed_loop("mixed", num_jobs=8, arrival_rate=1.0, seed=6),
            settings=TINY,
        )
        axes = {"scheduler.name": ["fcfs", "fair"]}
        serial = api.run_grid(base, axes, processes=1)
        parallel = api.run_grid(base, axes, processes=2)
        for (_, a), (_, b) in zip(serial, parallel, strict=True):
            assert a.metrics.job_completion_times == b.metrics.job_completion_times

    def test_run_grid_validates_axes(self):
        base = ScenarioSpec(workload=WorkloadSection.closed_loop(num_jobs=5), settings=TINY)
        with pytest.raises(ValueError, match="at least one value"):
            api.run_grid(base, {"scheduler.name": []})
        with pytest.raises(ValueError, match="at least one override axis"):
            api.run_grid(base, {})

    def test_result_schema(self, applications, tiny_prepared):
        priors, _ = tiny_prepared
        result = api.run(
            ScenarioSpec(
                workload=WorkloadSection.closed_loop("mixed", num_jobs=6, arrival_rate=1.0),
                settings=TINY,
            ),
            applications=applications,
            priors=priors,
        )
        payload = result.to_dict()
        assert payload["schema_version"] == api.SCHEMA_VERSION
        assert payload["metrics"]["num_jobs"] == 6
        assert payload["wall_clock_sec"] > 0
        # The resolved spec records the auto-sized cluster config.
        assert payload["spec"]["cluster"]["config"]["num_llm_executors"] >= 1
        json.dumps(payload)  # JSON-serializable end to end
        lean = result.to_dict(include_spec=False)
        assert "spec" not in lean

    def test_compare_shares_draw_and_cluster(self, applications, tiny_prepared):
        priors, profiler = tiny_prepared
        scenario = ScenarioSpec(
            workload=WorkloadSection.closed_loop("mixed", num_jobs=10, arrival_rate=1.2, seed=4),
            settings=TINY,
        )
        comparison = api.compare(
            scenario, ["fcfs", "sjf"], applications=applications,
            priors=priors, profiler=profiler,
        )
        assert set(comparison.metrics) == {"fcfs", "sjf"}
        assert set(comparison.metrics["fcfs"].job_completion_times) == set(
            comparison.metrics["sjf"].job_completion_times
        )

    def test_inapplicable_overrides_rejected(self):
        from repro.simulator.federation import HashRouter
        from repro.simulator.autoscaler import ThresholdAutoscaler

        single = ScenarioSpec(
            workload=WorkloadSection.closed_loop(num_jobs=5), settings=TINY
        )
        with pytest.raises(ValueError, match="router override only applies"):
            api.run(single, router=HashRouter())
        federated = ScenarioSpec(
            workload=WorkloadSection.open_loop(PoissonProcess(rate=1.0), max_jobs=5),
            cluster=ClusterSection(config=ClusterConfig(), num_shards=2),
            settings=TINY,
        )
        with pytest.raises(ValueError, match="do not apply to federated"):
            api.run(federated, autoscaler=ThresholdAutoscaler())

    def test_open_loop_sizing_needs_rate(self):
        spec = ScenarioSpec(
            workload=WorkloadSection.open_loop(
                PoissonProcess(rate=1.0, seed=5).take(5), seed=5
            ),
            settings=TINY,
        )
        with pytest.raises(ValueError, match="nominal_rate"):
            api.run(spec)

    def test_placement_section_resolves(self, applications, tiny_prepared):
        priors, _ = tiny_prepared
        result = api.run(
            ScenarioSpec(
                workload=WorkloadSection.closed_loop("mixed", num_jobs=8, arrival_rate=1.2, seed=6),
                cluster=ClusterSection(pools=TestConflictBugfix.POOLS),
                placement=PlacementSection("best_fit"),
                settings=TINY,
            ),
            applications=applications,
            priors=priors,
        )
        assert len(result.metrics.job_completion_times) == 8

    def test_async_section_resolves(self, applications):
        result = api.run(
            ScenarioSpec(
                workload=WorkloadSection.closed_loop("mixed", num_jobs=8, arrival_rate=1.5, seed=6),
                async_=AsyncSection(latency=1.0),
                settings=TINY,
            ),
            applications=applications,
        )
        assert result.metrics.num_async_decisions > 0


class TestSnapshotPolicyPlumbing:
    """``settings.snapshot_policy`` reaches the engines through the spec.

    The COW-vs-deepcopy observational identity is pinned in depth by
    tests/test_context_snapshot.py at the engine level; here we prove the
    declarative path actually selects the policy (no silent default) and
    that both policies produce bit-identical results through ``api.run``.
    """

    def _async_spec(self, policy, num_shards=1):
        if num_shards > 1:
            workload = WorkloadSection.open_loop(
                PoissonProcess(rate=1.2), max_jobs=10, seed=3
            )
            cluster = ClusterSection(
                config=ClusterConfig(num_regular_executors=4, num_llm_executors=2),
                num_shards=num_shards,
            )
        else:
            workload = WorkloadSection.closed_loop(
                "mixed", num_jobs=8, arrival_rate=1.5, seed=6
            )
            cluster = ClusterSection()
        return ScenarioSpec(
            workload=workload,
            cluster=cluster,
            async_=AsyncSection(latency=0.5),
            settings=ExperimentSettings(
                profile_jobs=30,
                prior_samples=15,
                snapshot_policy=policy,
                llmsched=LLMSchedConfig(seed=0),
            ),
        )

    def test_policies_bit_identical_single(self, applications):
        cow = api.run(self._async_spec("cow"), applications=applications)
        deep = api.run(self._async_spec("deepcopy"), applications=applications)
        assert cow.metrics.job_completion_times == deep.metrics.job_completion_times
        assert cow.metrics.makespan == deep.metrics.makespan
        assert cow.metrics.num_async_decisions == deep.metrics.num_async_decisions

    def test_policies_bit_identical_federated(self, applications):
        cow = api.run(self._async_spec("cow", num_shards=2), applications=applications)
        deep = api.run(
            self._async_spec("deepcopy", num_shards=2), applications=applications
        )
        assert cow.metrics.job_completion_times == deep.metrics.job_completion_times
        assert cow.metrics.makespan == deep.metrics.makespan

    def test_policy_reaches_the_engine(self, monkeypatch, applications):
        # Guard against the plumbing silently falling back to the default:
        # capture the SimulationConfig the dispatcher builds.
        from repro.api import dispatch as dispatch_module
        from repro.simulator.engine import SimulationEngine

        seen = {}
        original = SimulationEngine.__init__

        def spy(self, *args, **kwargs):
            seen["policy"] = kwargs["config"].snapshot_policy
            return original(self, *args, **kwargs)

        monkeypatch.setattr(dispatch_module.SimulationEngine, "__init__", spy)
        api.run(self._async_spec("deepcopy"), applications=applications)
        assert seen["policy"] == "deepcopy"
