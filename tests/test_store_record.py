"""RunRecord: content-addressed identity, timing segregation, round trips.

The bit-exactness bar from ISSUE 10: wrapping a live ``Result`` in a
record and merging it back must reproduce ``Result.to_dict`` exactly,
while the record's *identity* ignores every wall-clock-derived leaf — so
the same seeded scenario hashes identically on any machine.
"""

import json

import pytest

from repro import api
from repro.api.spec import ScenarioSpec
from repro.store.record import (
    RecordError,
    RunRecord,
    is_timing_leaf,
    merge_timing,
    split_timing,
)
from repro.utils.canonical import canonical_json, content_hash

TINY_SPEC = {
    "schema_version": 2,
    "scheduler": {"name": "fcfs"},
    "workload": {
        "mode": "closed",
        "workload_type": "mixed",
        "num_jobs": 6,
        "arrival_rate": 1.2,
        "seed": 7,
    },
    "cluster": {
        "config": {
            "num_regular_executors": 2,
            "num_llm_executors": 1,
            "max_batch_size": 4,
        }
    },
}


@pytest.fixture(scope="module")
def tiny_result():
    return api.run(ScenarioSpec.from_dict(TINY_SPEC))


class TestTimingSplit:
    def test_timing_leaf_classification(self):
        for key in ("wall_clock_sec", "avg_overhead_ms", "jobs_per_sec",
                    "elapsed_sec", "build_elapsed_sec", "speedup_vs_seed"):
            assert is_timing_leaf(key), key
        # Simulated quantities — *not* wall clock, part of record identity.
        for key in ("average_jct", "tps_per_gpu", "tps_per_user", "goodput",
                    "avg_decision_latency", "makespan"):
            assert not is_timing_leaf(key), key

    def test_split_merge_is_inverse(self):
        payload = {
            "metrics": {"average_jct": 3.5, "wall_clock_sec": 0.1},
            "rows": [{"jobs_per_sec": 9.0, "jct": 1.0}, {"jct": 2.0}],
            "elapsed_sec": 4.2,
            "label": "x",
        }
        det, timing = split_timing(payload)
        assert "wall_clock_sec" not in det["metrics"]
        assert "elapsed_sec" not in det
        assert det["rows"][0] == {"jct": 1.0}
        assert timing == {
            "metrics": {"wall_clock_sec": 0.1},
            "rows": {"0": {"jobs_per_sec": 9.0}},
            "elapsed_sec": 4.2,
        }
        assert merge_timing(det, timing) == payload

    def test_all_timing_dict_keeps_skeleton(self):
        det, timing = split_timing({"inner": {"elapsed_sec": 1.0}})
        assert det == {"inner": {}}
        assert merge_timing(det, timing) == {"inner": {"elapsed_sec": 1.0}}

    def test_timing_named_strings_stay_deterministic(self):
        # Only numeric leaves are wall-clock measurements.
        det, timing = split_timing({"elapsed_sec": "n/a"})
        assert det == {"elapsed_sec": "n/a"} and timing == {}


class TestRecordIdentity:
    def test_merged_payload_bit_exact_vs_result_to_dict(self, tiny_result):
        record = RunRecord.from_result(tiny_result)
        original = tiny_result.to_dict(include_spec=True)
        assert record.merged_payload() == original
        # ... byte-for-byte, through the same dumps the BENCH files use.
        assert json.dumps(record.merged_payload(), indent=2, sort_keys=True) == json.dumps(
            original, indent=2, sort_keys=True
        )

    def test_identity_excludes_wall_clock(self, tiny_result):
        import dataclasses

        slower = dataclasses.replace(tiny_result, wall_clock_sec=tiny_result.wall_clock_sec + 99.0)
        a, b = RunRecord.from_result(tiny_result), RunRecord.from_result(slower)
        assert a.record_id == b.record_id
        assert a.timing != b.timing

    def test_identity_covers_the_payload(self, tiny_result):
        record = RunRecord.from_result(tiny_result)
        tampered = json.loads(json.dumps(record.payload))
        tampered["metrics"]["average_jct"] += 1.0
        other = RunRecord(kind="result", payload=tampered, spec_hash=record.spec_hash,
                          seed=record.seed, scheduler=record.scheduler)
        assert other.record_id != record.record_id

    def test_provenance_and_timing_do_not_change_identity(self, tiny_result):
        record = RunRecord.from_result(tiny_result)
        stamped = record.with_provenance(machine="somewhere-else", note="x")
        assert stamped.record_id == record.record_id
        assert stamped.provenance["machine"] == "somewhere-else"

    def test_record_fields(self, tiny_result):
        record = RunRecord.from_result(tiny_result)
        assert record.kind == "result"
        assert record.scheduler == "fcfs"
        assert record.seed == 7
        assert record.spec_hash == tiny_result.spec.content_hash()
        assert record.schema_version == tiny_result.spec.schema_version
        assert record.dedup_key == ("result", record.spec_hash, 7, "fcfs")

    def test_bad_kind_rejected(self):
        with pytest.raises(RecordError, match="kind"):
            RunRecord(kind="banana", payload={})


class TestSerialization:
    def test_dict_roundtrip(self, tiny_result):
        record = RunRecord.from_result(tiny_result, bench_file="BENCH_X.json",
                                       section="s", label="fcfs@tiny")
        again = RunRecord.from_dict(json.loads(record.to_json()), verify=True)
        assert again == record

    def test_verify_detects_tampering(self, tiny_result):
        record = RunRecord.from_result(tiny_result)
        data = json.loads(record.to_json())
        data["payload"]["metrics"]["average_jct"] += 0.5
        with pytest.raises(RecordError, match="integrity"):
            RunRecord.from_dict(data, verify=True)
        # Without verification the (tampered) record still loads — the
        # regression gate then catches it as golden drift.
        assert RunRecord.from_dict(data).record_id == record.record_id

    def test_unsupported_record_schema(self):
        with pytest.raises(RecordError, match="record_schema"):
            RunRecord.from_dict({"kind": "section", "payload": {}, "record_schema": 99})

    def test_missing_fields(self):
        with pytest.raises(RecordError, match="kind"):
            RunRecord.from_dict({"payload": {}})


class TestCanonicalJson:
    def test_key_order_invariance(self):
        assert canonical_json({"b": 1, "a": [1.5, {"y": 2, "x": 3}]}) == canonical_json(
            {"a": [1.5, {"x": 3, "y": 2}], "b": 1}
        )
        assert content_hash({"b": 1, "a": 2}) == content_hash({"a": 2, "b": 1})

    def test_floats_shortest_repr(self):
        value = 0.1 + 0.2
        assert canonical_json({"v": value}) == f'{{"v":{value!r}}}'

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"v": float("nan")})

    def test_spec_content_hash_matches_canonical(self, tiny_result):
        spec = tiny_result.spec
        assert spec.content_hash() == content_hash(spec.to_dict())
