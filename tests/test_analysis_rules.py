"""Rule-by-rule tests for the REP001-REP008 invariants.

Each rule gets a clean fixture (must stay silent) and a violating fixture
(pinned finding count), all scoped via ``lint-as`` pragmas.  The broken-engine
fixture proves every rule fires, and the dominance tests prove the property
the gate exists for: deleting any single dirty-marking line from the real
``simulator/engine.py`` makes REP001 fail.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.core import analyze_paths, load_module, select_rules

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"
ENGINE = REPO_ROOT / "src" / "repro" / "simulator" / "engine.py"

ALL_CODES = {
    "REP001", "REP002", "REP003", "REP004",
    "REP005", "REP006", "REP007", "REP008",
}


def _codes(path, **kwargs):
    return analyze_paths([path], **kwargs).counts


# --------------------------------------------------------------------------- #
# Per-rule fixtures: clean stays silent, violations fire only their own code
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "code, expected",
    [
        ("REP001", 5),
        ("REP002", 3),
        ("REP003", 3),
        ("REP004", 2),
        ("REP005", 4),
        ("REP006", 1),
        ("REP007", 4),
        ("REP008", 4),
    ],
)
def test_violation_fixture_fires_exactly_its_code(code, expected):
    path = FIXTURES / f"rep{code[3:]}_violations.py"
    counts = _codes(path)
    assert counts == {code: expected}, counts


@pytest.mark.parametrize("code", sorted(ALL_CODES))
def test_clean_fixture_is_silent_under_all_rules(code):
    path = FIXTURES / f"rep{code[3:]}_clean.py"
    assert _codes(path) == {}


def test_broken_fixture_trips_every_rule():
    counts = _codes(FIXTURES / "broken_engine.py")
    assert set(counts) == ALL_CODES


def test_pragma_suppression_fixture_is_silent():
    assert _codes(FIXTURES / "pragma_suppression.py") == {}


def test_fixture_findings_report_real_paths():
    report = analyze_paths([FIXTURES / "broken_engine.py"])
    assert all("broken_engine.py" in f.path for f in report.findings)


# --------------------------------------------------------------------------- #
# Rule scoping: the same source is judged by where (lint-as says) it lives
# --------------------------------------------------------------------------- #
def _scoped(tmp_path, relpath, body):
    target = tmp_path / Path(relpath)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(body)
    return target


def test_rep001_only_applies_to_engine_and_federation(tmp_path):
    body = "def f(job):\n    job.advance(1.0)\n"
    in_scope = _scoped(tmp_path, "a/src/repro/simulator/engine.py", body)
    out_of_scope = _scoped(tmp_path, "b/src/repro/simulator/placement.py", body)
    oracle = _scoped(tmp_path, "c/src/repro/simulator/reference.py", body)
    assert _codes(in_scope, select=["REP001"]) == {"REP001": 1}
    assert _codes(out_of_scope, select=["REP001"]) == {}
    assert _codes(oracle, select=["REP001"]) == {}


def test_rep004_oracle_allowlist(tmp_path):
    body = "import copy\n\ndef f(x):\n    return copy.deepcopy(x)\n"
    stray = _scoped(tmp_path, "a/src/repro/simulator/engine.py", body)
    base = _scoped(tmp_path, "b/src/repro/schedulers/base.py", body)
    assert _codes(stray, select=["REP004"]) == {"REP004": 1}
    assert _codes(base, select=["REP004"]) == {}


def test_rep007_sanctioned_writers_allowlisted(tmp_path):
    body = "def f(task, now):\n    task.first_token_time = now\n"
    for owner in ("dag/task.py", "dag/stage.py", "simulator/executor.py"):
        path = _scoped(tmp_path, f"own/src/repro/{owner}", body)
        assert _codes(path, select=["REP007"]) == {}
    stray = _scoped(tmp_path, "stray/src/repro/simulator/engine.py", body)
    assert _codes(stray, select=["REP007"]) == {"REP007": 1}
    metrics = _scoped(tmp_path, "m/src/repro/core/metrics.py", body)
    assert _codes(metrics, select=["REP007"]) == {"REP007": 1}


def test_rep008_store_subsystem_allowlisted(tmp_path):
    body = "def seal(record, digest):\n    record.spec_hash = digest\n"
    for owner in ("store/record.py", "store/store.py", "store/query.py"):
        path = _scoped(tmp_path, f"own/src/repro/{owner}", body)
        assert _codes(path, select=["REP008"]) == {}
    stray = _scoped(tmp_path, "stray/src/repro/api/results.py", body)
    assert _codes(stray, select=["REP008"]) == {"REP008": 1}
    sched = _scoped(tmp_path, "s/src/repro/schedulers/base.py", body)
    assert _codes(sched, select=["REP008"]) == {"REP008": 1}


def test_rules_skip_tests_scope(tmp_path):
    # Test code may use wall clocks and unseeded RNGs freely.
    body = "import time\n\ndef f():\n    return time.time()\n"
    test_file = _scoped(tmp_path, "tests/test_something.py", body)
    assert _codes(test_file) == {}


def test_rep006_audited_site_requires_both_module_and_function(tmp_path):
    wrong_fn = _scoped(
        tmp_path,
        "a/src/repro/simulator/async_sched.py",
        "class B:\n    def drain(self, ctx):\n        return ctx.snapshot()\n",
    )
    right_fn = _scoped(
        tmp_path,
        "b/src/repro/simulator/async_sched.py",
        "class B:\n    def request(self, ctx):\n        return ctx.snapshot()\n",
    )
    assert _codes(wrong_fn, select=["REP006"]) == {"REP006": 1}
    assert _codes(right_fn, select=["REP006"]) == {}


# --------------------------------------------------------------------------- #
# The acceptance property: the gate bites on the real engine
# --------------------------------------------------------------------------- #
_DIRTY_LINE = re.compile(r"^\s*(self\._mark_job_dirty|cow\.mark_dirty|self\._cow\.mark_dirty)\(")


def _dirty_lines(source):
    return [i for i, line in enumerate(source.splitlines()) if _DIRTY_LINE.match(line)]


def _rep001_findings(tmp_path, source, tag):
    target = tmp_path / tag / "src" / "repro" / "simulator" / "engine.py"
    target.parent.mkdir(parents=True)
    target.write_text(source)
    return analyze_paths([target], select=["REP001"]).findings


def test_real_engine_is_rep001_clean(tmp_path):
    source = ENGINE.read_text()
    assert len(_dirty_lines(source)) >= 7, "engine lost its dirty-marking call sites?"
    assert _rep001_findings(tmp_path, source, "clean") == []


def test_reverting_any_single_mark_dirty_fires_rep001(tmp_path):
    # The reason this linter exists: silently dropping one COW dirty mark
    # from the engine must fail the gate.  Exhaustively delete each
    # dirty-marking line and require REP001 to fire every time.
    source = ENGINE.read_text()
    lines = source.splitlines()
    for index in _dirty_lines(source):
        mutated = list(lines)
        indent = mutated[index][: len(mutated[index]) - len(mutated[index].lstrip())]
        mutated[index] = indent + "pass"
        findings = _rep001_findings(tmp_path, "\n".join(mutated) + "\n", f"rm{index}")
        assert findings, f"removing dirty mark on line {index + 1} went undetected"


# --------------------------------------------------------------------------- #
# Spot checks on rule internals
# --------------------------------------------------------------------------- #
def test_rep005_sorted_wrapper_accepted(tmp_path):
    path = _scoped(
        tmp_path,
        "src/repro/schedulers/p.py",
        "ids = {1, 2}\n\ndef schedule(ctx):\n    return [i for i in sorted(ids)]\n",
    )
    assert _codes(path, select=["REP005"]) == {}


def test_rep002_seeded_default_rng_accepted(tmp_path):
    path = _scoped(
        tmp_path,
        "src/repro/workloads/w.py",
        "import numpy as np\n\ndef f(seed):\n    return np.random.default_rng(seed)\n",
    )
    assert _codes(path, select=["REP002"]) == {}


def test_rep003_alias_resolution(tmp_path):
    path = _scoped(
        tmp_path,
        "src/repro/simulator/c.py",
        "import time as wallclock\n\ndef f():\n    return wallclock.perf_counter()\n",
    )
    assert _codes(path, select=["REP003"]) == {"REP003": 1}


def test_gutting_the_mark_job_dirty_wrapper_fires_rep001(tmp_path):
    path = _scoped(
        tmp_path,
        "src/repro/simulator/engine.py",
        "class E:\n    def _mark_job_dirty(self, job):\n        pass\n",
    )
    findings = analyze_paths([path], select=["REP001"]).findings
    assert len(findings) == 1
    assert "no longer calls the COW tracker" in findings[0].message


def test_every_rule_has_code_name_summary():
    for rule in select_rules():
        assert re.fullmatch(r"REP\d{3}", rule.code)
        assert rule.name and rule.summary


def test_load_module_rejects_syntax_errors(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    with pytest.raises(SyntaxError):
        load_module(bad)
