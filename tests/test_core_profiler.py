"""Tests for the Bayesian-network profiler."""

import numpy as np
import pytest

from repro.core.calibration import BatchingAwareCalibrator
from repro.core.profiler import BayesianProfiler
from repro.simulator.latency import DecodingLatencyProfile
from repro.utils.rng import make_rng
from repro.workloads import (
    CodeGenerationApplication,
    SequenceSortingApplication,
    TaskAutomationApplication,
)


@pytest.fixture(scope="module")
def fitted_profiler():
    """One profiler fitted on three representative applications."""
    profiler = BayesianProfiler()
    profiler.fit(
        [
            SequenceSortingApplication(),
            CodeGenerationApplication(),
            TaskAutomationApplication(),
        ],
        n_profile_jobs=120,
        seed=1,
    )
    return profiler


class TestFitting:
    def test_profiles_registered(self, fitted_profiler):
        assert set(fitted_profiler.applications) == {
            "sequence_sorting",
            "code_generation",
            "task_automation",
        }
        assert fitted_profiler.has_profile("sequence_sorting")
        assert not fitted_profiler.has_profile("unknown_app")

    def test_unknown_profile_lookup_raises(self, fitted_profiler):
        with pytest.raises(KeyError):
            fitted_profiler.profile_for("unknown_app")

    def test_profile_contains_all_variables(self, fitted_profiler):
        app = CodeGenerationApplication()
        profile = fitted_profiler.profile_for("code_generation")
        assert profile.variables == app.profile_variables()
        assert set(profile.specs) == set(app.profile_variables())

    def test_network_learned_correlation_edges(self, fitted_profiler):
        """The strong correlations between sorting stages must become edges."""
        profile = fitted_profiler.profile_for("sequence_sorting")
        assert len(profile.network.edges) > 0

    def test_dynamic_info_for_planning_application(self, fitted_profiler):
        profile = fitted_profiler.profile_for("task_automation")
        assert "ta_dynamic" in profile.dynamic_info
        preceding, entropy, duration_range = profile.dynamic_info["ta_dynamic"]
        assert preceding == "ta_plan"
        assert entropy > 0
        assert duration_range > 0

    def test_mean_total_duration_positive(self, fitted_profiler):
        for app_name in fitted_profiler.applications:
            assert fitted_profiler.profile_for(app_name).mean_total_duration > 0

    def test_invalid_fit_parameters(self):
        with pytest.raises(ValueError):
            BayesianProfiler().fit([SequenceSortingApplication()], n_profile_jobs=1)
        with pytest.raises(ValueError):
            BayesianProfiler(max_intervals=0)
        with pytest.raises(ValueError):
            BayesianProfiler(max_correlated_targets=0)


class TestEvidence:
    def test_no_evidence_for_fresh_job(self, fitted_profiler):
        app = SequenceSortingApplication()
        job = app.sample_job("j0", 0.0, make_rng(0))
        assert fitted_profiler.evidence_for(job) == {}

    def test_evidence_after_stage_completion(self, fitted_profiler):
        app = SequenceSortingApplication()
        job = app.sample_job("j0", 0.0, make_rng(0))
        stage = job.stage("ss_split")
        stage.mark_running()
        stage.tasks[0].mark_running(0.0, "e")
        stage.tasks[0].mark_finished(stage.tasks[0].work)
        job.notify_stage_finished("ss_split", stage.tasks[0].work)
        evidence = fitted_profiler.evidence_for(job)
        assert "ss_split" in evidence
        profile = fitted_profiler.profile_for("sequence_sorting")
        assert 0 <= evidence["ss_split"] < profile.specs["ss_split"].cardinality

    def test_unselected_tools_pinned_to_zero_after_plan(self, fitted_profiler):
        app = TaskAutomationApplication()
        job = app.sample_job("j0", 0.0, make_rng(3))
        plan = job.stage("ta_plan")
        plan.mark_running()
        plan.tasks[0].mark_running(0.0, "e")
        plan.tasks[0].mark_finished(plan.tasks[0].work)
        job.notify_stage_finished("ta_plan", plan.tasks[0].work)
        evidence = fitted_profiler.evidence_for(job)
        assert "ta_plan" in evidence
        selected_keys = {s.profile_key for s in job.stages.values()}
        unselected = [
            v for v in app.profile_variables()
            if v.startswith("ta_tool_") and v not in selected_keys
        ]
        for variable in unselected:
            assert variable in evidence  # pinned to the zero state


class TestDurationEstimation:
    def test_estimate_close_to_true_remaining_on_average(self, fitted_profiler):
        """The posterior estimate should track the true remaining work."""
        app = SequenceSortingApplication()
        rng = make_rng(5)
        errors = []
        for i in range(30):
            job = app.sample_job(f"j{i}", 0.0, rng)
            estimate = fitted_profiler.estimate_remaining_duration(job)
            errors.append(abs(estimate - job.true_total_work) / job.true_total_work)
        assert float(np.median(errors)) < 0.6

    def test_evidence_improves_estimate(self, fitted_profiler):
        """Observing the split stage should move the estimate towards truth."""
        app = SequenceSortingApplication()
        rng = make_rng(11)
        improved = 0
        total = 0
        for i in range(30):
            job = app.sample_job(f"j{i}", 0.0, rng)
            true_total = job.true_total_work
            before = fitted_profiler.estimate_remaining_duration(job)
            stage = job.stage("ss_split")
            stage.mark_running()
            stage.tasks[0].mark_running(0.0, "e")
            stage.tasks[0].mark_finished(stage.tasks[0].work)
            job.notify_stage_finished("ss_split", stage.tasks[0].work)
            after = fitted_profiler.estimate_remaining_duration(job) + stage.tasks[0].work
            total += 1
            if abs(after - true_total) <= abs(before - true_total) + 1e-6:
                improved += 1
        assert improved / total > 0.55

    def test_without_posterior_uses_historical_means(self, fitted_profiler):
        app = SequenceSortingApplication()
        job = app.sample_job("j0", 0.0, make_rng(2))
        profile = fitted_profiler.profile_for("sequence_sorting")
        estimate = fitted_profiler.estimate_remaining_duration(job, use_posterior=False)
        assert estimate == pytest.approx(profile.mean_total_duration, rel=1e-6)

    def test_calibration_inflates_llm_share(self, fitted_profiler):
        app = SequenceSortingApplication()
        job = app.sample_job("j0", 0.0, make_rng(2))
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.2))
        base = fitted_profiler.estimate_remaining_duration(job, target_batch_size=1, calibrator=calibrator)
        loaded = fitted_profiler.estimate_remaining_duration(job, target_batch_size=8, calibrator=calibrator)
        assert loaded > base

    def test_remaining_interval_brackets_estimate(self, fitted_profiler):
        app = CodeGenerationApplication()
        job = app.sample_job("j0", 0.0, make_rng(4))
        lower, upper = fitted_profiler.estimate_remaining_interval(job)
        estimate = fitted_profiler.estimate_remaining_duration(job)
        assert lower <= estimate <= upper

    def test_expected_stage_duration(self, fitted_profiler):
        value = fitted_profiler.expected_stage_duration("sequence_sorting", "ss_split", {})
        assert value > 0
        with pytest.raises(KeyError):
            fitted_profiler.expected_stage_duration("sequence_sorting", "nope", {})


class TestUncertaintyReduction:
    def test_correlated_variables_nonempty_for_root_stage(self, fitted_profiler):
        correlated = fitted_profiler.correlated_variables("sequence_sorting", "ss_split")
        assert correlated  # the split stage drives the downstream LLM stages

    def test_uncertainty_reducing_flags(self, fitted_profiler):
        assert fitted_profiler.is_uncertainty_reducing("sequence_sorting", "ss_split")
        assert fitted_profiler.is_uncertainty_reducing("task_automation", "ta_plan")
        assert not fitted_profiler.is_uncertainty_reducing("unknown_app", "x")

    def test_planner_reduction_dominated_by_dynamic_bonus(self, fitted_profiler):
        app = TaskAutomationApplication()
        job = app.sample_job("j0", 0.0, make_rng(6))
        reduction = fitted_profiler.uncertainty_reduction(job, "ta_plan")
        profile = fitted_profiler.profile_for("task_automation")
        _, entropy, duration_range = profile.dynamic_info["ta_dynamic"]
        assert reduction >= entropy * duration_range

    def test_reduction_non_negative_and_zero_for_observed(self, fitted_profiler):
        app = SequenceSortingApplication()
        job = app.sample_job("j0", 0.0, make_rng(7))
        reduction = fitted_profiler.uncertainty_reduction(job, "ss_split")
        assert reduction >= 0.0
        # Complete the stage; its reduction becomes zero (nothing left to learn).
        stage = job.stage("ss_split")
        stage.mark_running()
        stage.tasks[0].mark_running(0.0, "e")
        stage.tasks[0].mark_finished(1.0)
        job.notify_stage_finished("ss_split", 1.0)
        assert fitted_profiler.uncertainty_reduction(job, "ss_split") == 0.0

    def test_uncertainty_reducing_stage_scores_higher_than_isolated(self, fitted_profiler):
        """The split stage (correlated) must beat a score stage (uncorrelated)."""
        app = SequenceSortingApplication()
        job = app.sample_job("j0", 0.0, make_rng(8))
        split_reduction = fitted_profiler.uncertainty_reduction(job, "ss_split")
        score_reduction = fitted_profiler.uncertainty_reduction(job, "ss_score_final")
        assert split_reduction > score_reduction
