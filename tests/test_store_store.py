"""RunStore durability: dedup, versioning, index rebuild, crash safety,
and concurrent ingest from real ``run_grid`` worker processes."""

import json
import os
import pickle

import pytest

from repro import api
from repro.api.spec import ScenarioSpec
from repro.store import RunRecord, RunStore, StoreError
from tests.test_store_record import TINY_SPEC


@pytest.fixture(scope="module")
def tiny_result():
    return api.run(ScenarioSpec.from_dict(TINY_SPEC))


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "store")


class TestAddAndDedup:
    def test_add_then_dedup(self, store, tiny_result):
        record, added = store.add_result(tiny_result)
        assert added and len(store) == 1
        again, added_again = store.add_result(tiny_result)
        assert not added_again and len(store) == 1
        assert again.record_id == record.record_id
        # One journal line per *accepted* record.
        assert len(store.journal_entries()) == 1

    def test_run_store_integration_dedups(self, store, tiny_result):
        # api.run(store=...) records; rerunning the same spec adds nothing
        # because the identity hash excludes wall clock.
        result = api.run(ScenarioSpec.from_dict(TINY_SPEC), store=store)
        assert len(store) == 1
        api.run(ScenarioSpec.from_dict(TINY_SPEC), store=str(store.root))
        assert len(store) == 1
        assert store.records()[0].record_id == RunRecord.from_result(result).record_id

    def test_provenance_stamped(self, store, tiny_result):
        record, _ = store.add_result(tiny_result)
        stored = store.get(record.record_id)
        assert stored.provenance["source"] == "api.run"
        assert "package_version" in stored.provenance

    def test_new_version_supersedes(self, store, tiny_result):
        old, _ = store.add_result(tiny_result)
        changed = json.loads(json.dumps(old.payload))
        changed["metrics"]["average_jct"] += 1.0
        new = RunRecord(kind="result", payload=changed, spec_hash=old.spec_hash,
                        seed=old.seed, scheduler=old.scheduler,
                        schema_version=old.schema_version)
        assert new.dedup_key == old.dedup_key
        _, added = store.add(new)
        assert added and len(store) == 2
        entry = store.journal_entries()[-1]
        assert entry["supersedes"] == [old.record_id]
        latest = store.latest_records()
        assert [r.record_id for r in latest] == [new.record_id]


class TestIndexAndJournal:
    def test_rebuild_index_from_records_alone(self, store, tiny_result):
        store.add_result(tiny_result)
        before = json.loads(store.index_path.read_text())
        os.remove(store.index_path)
        rebuilt = store.rebuild_index()
        assert json.loads(store.index_path.read_text()) == before
        assert set(rebuilt) == set(store.record_ids())

    def test_corrupt_index_is_ignored(self, store, tiny_result):
        record, _ = store.add_result(tiny_result)
        store.index_path.write_text("{ not json")
        # Queries never trust the cache: reads still see the record.
        assert store.get(record.record_id) is not None
        assert [r.record_id for r in store.latest_records()] == [record.record_id]

    def test_torn_journal_line_skipped(self, store, tiny_result):
        store.add_result(tiny_result)
        with open(store.journal_path, "a") as handle:
            handle.write('{"event": "add", "record_id": "abc')  # crash mid-append
        assert len(store.journal_entries()) == 1
        assert len(store.latest_records()) == 1


class TestCrashSafety:
    def test_partial_tmp_file_ignored(self, store, tiny_result):
        record, _ = store.add_result(tiny_result)
        shard = store._record_path(record.record_id).parent
        # A crashed atomic write leaves "<name>.json.tmp.<pid>" behind;
        # readers must skip it (the glob only matches real records).
        (shard / f"{record.record_id}.json.tmp.999").write_text('{"kind": "resu')
        assert store.record_ids() == [record.record_id]
        assert len(store.records()) == 1

    def test_corrupt_record_file_raises(self, store, tiny_result):
        record, _ = store.add_result(tiny_result)
        store._record_path(record.record_id).write_text("{ half a record")
        with pytest.raises(StoreError, match="unreadable"):
            store.records()

    def test_renamed_record_file_detected(self, store, tiny_result):
        record, _ = store.add_result(tiny_result)
        path = store._record_path(record.record_id)
        bogus = path.parent / (path.stem[:-4] + "beef.json")
        path.rename(bogus)
        with pytest.raises(StoreError, match="filename"):
            store.records()

    def test_verify_on_load_catches_tamper(self, store, tiny_result):
        record, _ = store.add_result(tiny_result)
        path = store._record_path(record.record_id)
        data = json.loads(path.read_text())
        data["payload"]["metrics"]["average_jct"] += 1.0
        path.write_text(json.dumps(data) + "\n")
        assert len(store.records()) == 1  # loads without verification...
        with pytest.raises(StoreError, match="integrity"):
            store.records(verify=True)  # ...fails integrity-checked reads

    def test_format_version_gate(self, store, tiny_result):
        store.add_result(tiny_result)
        (store.root / "FORMAT.json").write_text('{"format_version": 99}')
        with pytest.raises(StoreError, match="format_version"):
            store.add_result(tiny_result)


class TestConcurrentIngest:
    def test_store_is_picklable(self, store):
        assert pickle.loads(pickle.dumps(store)).root == store.root

    def test_multiprocess_run_grid_ingest(self, tmp_path):
        """Two worker processes record into one store without clobbering."""
        store = RunStore(tmp_path / "grid-store")
        spec = ScenarioSpec.from_dict(TINY_SPEC)
        rows = api.run_grid(
            spec, {"workload.seed": [7, 8]}, processes=2, store=store
        )
        assert len(rows) == 2
        assert len(store) == 2
        assert sorted(r.seed for r in store.records()) == [7, 8]
        # Both workers journaled whole lines (O_APPEND, no interleaving).
        entries = store.journal_entries()
        assert sorted(e["record_id"] for e in entries) == store.record_ids()
        # The per-worker results round-trip bit-exactly through the store.
        by_seed = {r.seed: r for r in store.records(verify=True)}
        for _, result in rows:
            assert by_seed[result.seed].merged_payload() == result.to_dict(include_spec=True)

    def test_grid_reingest_dedups(self, tmp_path):
        store = RunStore(tmp_path / "grid-store")
        spec = ScenarioSpec.from_dict(TINY_SPEC)
        api.run_grid(spec, {"workload.seed": [7, 8]}, processes=1, store=store)
        api.run_grid(spec, {"workload.seed": [7, 8]}, processes=1, store=store)
        assert len(store) == 2
        assert len(store.journal_entries()) == 2


class TestBenchOutputMirror:
    def test_record_bench_section_mirrors_into_store(self, tmp_path, monkeypatch):
        from benchmarks.bench_output import record_bench_section

        monkeypatch.setenv("BENCH_OUTPUT", str(tmp_path / "BENCH_T.json"))
        monkeypatch.setenv("BENCH_SCALE", "smoke")
        root = tmp_path / "store"
        record_bench_section("demo_section", {"average_jct": 4.0}, store=str(root))
        store = RunStore(root)
        (record,) = store.records(verify=True)
        assert record.kind == "section" and record.section == "demo_section"
        assert record.merged_payload() == {"average_jct": 4.0, "scale": "smoke"}

    def test_bench_store_env_var(self, tmp_path, monkeypatch):
        from benchmarks.bench_output import record_bench_section

        monkeypatch.setenv("BENCH_OUTPUT", str(tmp_path / "BENCH_T.json"))
        monkeypatch.setenv("BENCH_STORE", str(tmp_path / "env-store"))
        record_bench_section("demo_section", {"average_jct": 4.0})
        assert len(RunStore(tmp_path / "env-store")) == 1

    def test_no_store_configured_is_a_noop(self, tmp_path, monkeypatch):
        from benchmarks.bench_output import record_bench_section

        monkeypatch.setenv("BENCH_OUTPUT", str(tmp_path / "BENCH_T.json"))
        monkeypatch.delenv("BENCH_STORE", raising=False)
        record_bench_section("demo_section", {"average_jct": 4.0})
        assert not (tmp_path / "store").exists()
