"""Query-layer tests over stores built from the committed BENCH artifacts."""

from pathlib import Path

import pytest

from repro.store import RunStore
from repro.store.query import (
    filter_records,
    group_records,
    latest_per_key,
    metric_of,
    pareto_front,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def bench_store(tmp_path_factory):
    store = RunStore(tmp_path_factory.mktemp("bench") / "store")
    store.ingest_bench_file(REPO_ROOT / "BENCH_4.json")
    store.ingest_bench_file(REPO_ROOT / "BENCH_6.json")
    return store


class TestFilter:
    def test_filter_by_fields(self, bench_store):
        sections = filter_records(bench_store, kind="section")
        assert {r.section for r in sections} >= {
            "async_latency_degradation",
            "slo_serving_pareto",
        }
        one = filter_records(
            bench_store, kind="result", section="async_latency_degradation",
            label="fcfs@0s",
        )
        assert len(one) == 1 and one[0].bench_file == "BENCH_4.json"

    def test_filter_accepts_record_lists(self, bench_store):
        records = bench_store.records()
        assert filter_records(records, kind="section") == filter_records(
            bench_store, kind="section"
        )

    def test_filter_predicate(self, bench_store):
        odd = filter_records(bench_store, predicate=lambda r: r.label == "sjf@5s")
        assert [r.label for r in odd] == ["sjf@5s"]

    def test_unknown_field_rejected(self, bench_store):
        with pytest.raises(ValueError, match="unknown filter field"):
            filter_records(bench_store, flavor="spicy")


class TestGroupAndLatest:
    def test_group_by_field_name(self, bench_store):
        groups = group_records(bench_store, "bench_file")
        assert set(groups) == {"BENCH_4.json", "BENCH_6.json"}
        assert sum(len(v) for v in groups.values()) == len(bench_store)

    def test_group_by_callable(self, bench_store):
        groups = group_records(bench_store, lambda r: r.kind)
        assert set(groups) == {"result", "section"}

    def test_latest_per_key_prefers_journal_order(self, bench_store):
        records = bench_store.records()
        # With no duplicate dedup keys, latest == all.
        assert len(latest_per_key(records, order=bench_store.journal_order())) == len(records)

    def test_latest_picks_newer_version(self):
        from repro.store.record import RunRecord

        old = RunRecord(kind="section", payload={"v": 1}, bench_file="B", section="s")
        new = RunRecord(kind="section", payload={"v": 2}, bench_file="B", section="s")
        assert old.dedup_key == new.dedup_key
        order = {old.record_id: 0, new.record_id: 1}
        assert latest_per_key([old, new], order=order) == [new]
        assert latest_per_key([new, old], order=order) == [new]


class TestMetricsAndPareto:
    def test_metric_of_dotted_and_bare(self, bench_store):
        (rec,) = filter_records(
            bench_store, kind="result", label="fcfs@0s",
            section="async_latency_degradation",
        )
        dotted = metric_of(rec, "metrics.average_jct")
        assert dotted is not None and dotted > 0
        assert metric_of(rec, "average_jct") == dotted
        assert metric_of(rec, "metrics.no_such_metric") is None

    def test_pareto_front_minimizing_jct(self, bench_store):
        zero_latency = filter_records(
            bench_store,
            kind="result",
            section="async_latency_degradation",
            predicate=lambda r: r.label.endswith("@0s"),
        )
        front = pareto_front(
            zero_latency, ["metrics.average_jct"], maximize=[False]
        )
        # Single minimized objective: the front is exactly the argmin.
        values = {r.label: metric_of(r, "metrics.average_jct") for r in zero_latency}
        best = min(values.values())
        assert [v for _, (v,) in front] == [best]
        assert values[front[0][0].label] == best

    def test_pareto_front_requires_matching_lengths(self, bench_store):
        with pytest.raises(ValueError, match="maximize"):
            pareto_front(bench_store, ["a", "b"], maximize=[True])
