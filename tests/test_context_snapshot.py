"""Property-based tests: a context snapshot is immune to live mutations.

The asynchronous backend hands schedulers a frozen snapshot of the
:class:`~repro.schedulers.base.SchedulingContext`; whatever the live
simulation does during the decision's latency window — placing tasks,
finishing them, preempting, admitting arrivals — the pending decision's
view must not change.  Hypothesis drives randomized workloads through a
randomized number of engine steps between snapshot and check.

Two snapshot implementations are under test (``SimulationConfig.
snapshot_policy``): the copy-on-write default, whose job entries share
live objects until the engine mutates them, and the wholesale deep copy
kept as the golden oracle.  The immunity property must hold for both, and
the two must be *observationally identical* at every mutation step — that
equivalence property is the license to ship COW as the default.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationConfig, SimulationEngine
from repro.workloads.mixtures import (
    WorkloadSpec,
    WorkloadType,
    default_applications,
    generate_workload,
)

APPLICATIONS = default_applications()
CLUSTER = ClusterConfig(num_regular_executors=2, num_llm_executors=1, max_batch_size=4)
POLICIES = ("cow", "deepcopy")


def build_engine(seed, num_jobs, arrival_rate, snapshot_policy="cow"):
    spec = WorkloadSpec(
        workload_type=WorkloadType.MIXED,
        num_jobs=num_jobs,
        arrival_rate=arrival_rate,
        seed=seed,
    )
    jobs = generate_workload(spec, applications=APPLICATIONS)
    return SimulationEngine(
        jobs,
        FcfsScheduler(),
        cluster=Cluster(CLUSTER),
        config=SimulationConfig(snapshot_policy=snapshot_policy),
    )


def context_digest(context):
    """Everything a scheduler can observe, flattened to plain values."""
    digest = {
        "time": context.time,
        "free_regular": context.free_regular_slots,
        "free_llm": context.free_llm_slots,
        "batch_sizes": list(context.llm_batch_sizes),
        "jobs": [],
    }
    for job in context.jobs:
        stages = {}
        for stage_id, stage in sorted(job.stages.items()):
            stages[stage_id] = {
                "state": stage.state.name,
                "visible": stage.visible,
                "tasks": [
                    (t.key(), t.state.name, t.progress, t.remaining_work, t.executor_id)
                    for t in stage.tasks
                ],
            }
        digest["jobs"].append(
            {
                "job_id": job.job_id,
                "finished": job.is_finished,
                "schedulable": sorted(t.key() for t in job.schedulable_tasks()),
                "stages": stages,
            }
        )
    return digest


@pytest.mark.parametrize("policy", POLICIES)
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_jobs=st.integers(min_value=2, max_value=8),
    arrival_rate=st.floats(min_value=0.5, max_value=4.0),
    warmup_steps=st.integers(min_value=1, max_value=12),
    mutation_steps=st.integers(min_value=1, max_value=40),
)
def test_snapshot_survives_live_mutations(
    policy, seed, num_jobs, arrival_rate, warmup_steps, mutation_steps
):
    engine = build_engine(seed, num_jobs, arrival_rate, snapshot_policy=policy)
    for _ in range(warmup_steps):
        if not engine.step():
            break
    snapshot = engine._build_context().snapshot()
    assert snapshot.is_snapshot
    assert snapshot.snapshot_time == engine.current_time
    before = context_digest(snapshot)

    # Mutate the live world as hard as the simulation allows: every step
    # places tasks, accrues progress, finishes stages, admits arrivals.
    for _ in range(mutation_steps):
        if not engine.step():
            break

    assert context_digest(snapshot) == before


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_jobs=st.integers(min_value=2, max_value=8),
    arrival_rate=st.floats(min_value=0.5, max_value=4.0),
    warmup_steps=st.integers(min_value=1, max_value=12),
    mutation_steps=st.integers(min_value=1, max_value=30),
)
def test_cow_and_deepcopy_snapshots_observationally_identical(
    seed, num_jobs, arrival_rate, warmup_steps, mutation_steps
):
    """The tentpole equivalence property: run the *same* deterministic
    simulation under both snapshot policies, snapshot both at the same
    point, then keep stepping both engines in lockstep — the two snapshots
    must agree observable-field-for-observable-field at every step, and the
    two live worlds must stay bit-identical (COW bookkeeping must not
    perturb the simulation itself)."""
    cow_engine = build_engine(seed, num_jobs, arrival_rate, snapshot_policy="cow")
    ref_engine = build_engine(seed, num_jobs, arrival_rate, snapshot_policy="deepcopy")
    for _ in range(warmup_steps):
        cow_alive = cow_engine.step()
        ref_alive = ref_engine.step()
        assert cow_alive == ref_alive
        if not cow_alive:
            break
    cow_snapshot = cow_engine._build_context().snapshot()
    ref_snapshot = ref_engine._build_context().snapshot()
    assert context_digest(cow_snapshot) == context_digest(ref_snapshot)

    frozen = context_digest(ref_snapshot)
    for _ in range(mutation_steps):
        cow_alive = cow_engine.step()
        ref_alive = ref_engine.step()
        assert cow_alive == ref_alive
        # Interleaved live mutation: after every step, both snapshots must
        # still show the frozen view, and the live engines must agree.
        assert context_digest(cow_snapshot) == frozen
        assert context_digest(ref_snapshot) == frozen
        assert context_digest(cow_engine._build_context()) == context_digest(
            ref_engine._build_context()
        )
        if not cow_alive:
            break


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_jobs=st.integers(min_value=2, max_value=6),
)
def test_mutating_snapshot_does_not_leak_into_live(seed, num_jobs):
    """Deep-copy oracle only: isolation holds in *both* directions, so even
    a scheduler that (illegally) scribbles on the snapshot cannot corrupt
    live state.  COW snapshots are one-directional read-only views — the
    scheduler contract forbids mutating the context either way."""
    engine = build_engine(seed, num_jobs, arrival_rate=2.0, snapshot_policy="deepcopy")
    while not engine._active_jobs:
        if not engine.step():
            return  # degenerate draw: every job completed on arrival
    live_before = context_digest(engine._build_context())
    snapshot = engine._build_context().snapshot()

    # Vandalize the snapshot: flip task state, burn progress, drop stages.
    for job in snapshot.jobs:
        for stage in job.stages.values():
            for task in stage.tasks:
                task.progress = task.work
                task.executor_id = "bogus"
        job.finish_time = -1.0

    assert context_digest(engine._build_context()) == live_before


@pytest.mark.parametrize("policy", POLICIES)
def test_snapshot_of_snapshot_raises(policy):
    """A snapshot is frozen at one instant; re-snapshotting it used to
    silently re-stamp ``snapshot_time`` (and re-deep-copy) — now it raises."""
    engine = build_engine(seed=1, num_jobs=3, arrival_rate=2.0, snapshot_policy=policy)
    while not engine._active_jobs:
        assert engine.step()
    first = engine._build_context().snapshot()
    with pytest.raises(RuntimeError, match="cannot snapshot a snapshot"):
        first.snapshot()


def test_pipelined_cow_snapshots_are_mutually_isolated():
    """Pipelined async mode keeps up to ``max_in_flight`` snapshots alive at
    once.  Each must freeze its own instant: materializing a job in one
    snapshot must never alias (or disturb) another snapshot's view."""
    engine = build_engine(seed=3, num_jobs=6, arrival_rate=3.0, snapshot_policy="cow")
    while len(engine._active_jobs) < 2:
        assert engine.step()
    first = engine._build_context().snapshot()
    first_digest = context_digest(first)

    # Advance the live world so the second snapshot freezes a later instant.
    for _ in range(3):
        if not engine.step():
            break
    second = engine._build_context().snapshot()
    second_digest = context_digest(second)

    for _ in range(10):
        if not engine.step():
            break

    assert context_digest(first) == first_digest
    assert context_digest(second) == second_digest
    # Materialized clones are private per snapshot: two snapshot views may
    # only share a job object while both still alias the *live* one (i.e.
    # the job was never mutated since the earlier snapshot was taken).
    live_jobs = {job.job_id: job for job in engine._active_jobs.values()}
    second_by_id = {job.job_id: job for job in second.jobs}
    for job in first.jobs:
        twin = second_by_id.get(job.job_id)
        if twin is not None and job is twin:
            assert live_jobs.get(job.job_id) is job


def test_cow_tracker_forgets_dead_snapshots():
    """Dropping a snapshot must drop its bookkeeping: once no snapshot is
    alive, mark-dirty is a no-op and the tracker holds no references."""
    engine = build_engine(seed=5, num_jobs=4, arrival_rate=2.0, snapshot_policy="cow")
    while not engine._active_jobs:
        assert engine.step()
    tracker = engine._cow
    assert tracker is not None and not tracker.active
    snapshot = engine._build_context().snapshot()
    assert tracker.active and tracker.num_live_snapshots() == 1
    del snapshot
    assert not tracker.active and tracker.num_live_snapshots() == 0
