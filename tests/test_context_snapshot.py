"""Property-based tests: a context snapshot is immune to live mutations.

The asynchronous backend hands schedulers a deep snapshot of the
:class:`~repro.schedulers.base.SchedulingContext`; whatever the live
simulation does during the decision's latency window — placing tasks,
finishing them, preempting, admitting arrivals — the pending decision's
view must not change.  Hypothesis drives randomized workloads through a
randomized number of engine steps between snapshot and check.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.workloads.mixtures import (
    WorkloadSpec,
    WorkloadType,
    default_applications,
    generate_workload,
)

APPLICATIONS = default_applications()
CLUSTER = ClusterConfig(num_regular_executors=2, num_llm_executors=1, max_batch_size=4)


def build_engine(seed, num_jobs, arrival_rate):
    spec = WorkloadSpec(
        workload_type=WorkloadType.MIXED,
        num_jobs=num_jobs,
        arrival_rate=arrival_rate,
        seed=seed,
    )
    jobs = generate_workload(spec, applications=APPLICATIONS)
    return SimulationEngine(jobs, FcfsScheduler(), cluster=Cluster(CLUSTER))


def context_digest(context):
    """Everything a scheduler can observe, flattened to plain values."""
    digest = {
        "time": context.time,
        "free_regular": context.free_regular_slots,
        "free_llm": context.free_llm_slots,
        "batch_sizes": list(context.llm_batch_sizes),
        "jobs": [],
    }
    for job in context.jobs:
        stages = {}
        for stage_id, stage in sorted(job.stages.items()):
            stages[stage_id] = {
                "state": stage.state.name,
                "visible": stage.visible,
                "tasks": [
                    (t.key(), t.state.name, t.progress, t.remaining_work, t.executor_id)
                    for t in stage.tasks
                ],
            }
        digest["jobs"].append(
            {
                "job_id": job.job_id,
                "finished": job.is_finished,
                "schedulable": sorted(t.key() for t in job.schedulable_tasks()),
                "stages": stages,
            }
        )
    return digest


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_jobs=st.integers(min_value=2, max_value=8),
    arrival_rate=st.floats(min_value=0.5, max_value=4.0),
    warmup_steps=st.integers(min_value=1, max_value=12),
    mutation_steps=st.integers(min_value=1, max_value=40),
)
def test_snapshot_survives_live_mutations(
    seed, num_jobs, arrival_rate, warmup_steps, mutation_steps
):
    engine = build_engine(seed, num_jobs, arrival_rate)
    for _ in range(warmup_steps):
        if not engine.step():
            break
    snapshot = engine._build_context().snapshot()
    assert snapshot.is_snapshot
    assert snapshot.snapshot_time == engine.current_time
    before = context_digest(snapshot)

    # Mutate the live world as hard as the simulation allows: every step
    # places tasks, accrues progress, finishes stages, admits arrivals.
    for _ in range(mutation_steps):
        if not engine.step():
            break

    assert context_digest(snapshot) == before


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_jobs=st.integers(min_value=2, max_value=6),
)
def test_mutating_snapshot_does_not_leak_into_live(seed, num_jobs):
    engine = build_engine(seed, num_jobs, arrival_rate=2.0)
    while not engine._active_jobs:
        if not engine.step():
            return  # degenerate draw: every job completed on arrival
    live_before = context_digest(engine._build_context())
    snapshot = engine._build_context().snapshot()

    # Vandalize the snapshot: flip task state, burn progress, drop stages.
    for job in snapshot.jobs:
        for stage in job.stages.values():
            for task in stage.tasks:
                task.progress = task.work
                task.executor_id = "bogus"
        job.finish_time = -1.0

    assert context_digest(engine._build_context()) == live_before


def test_snapshot_of_snapshot_is_independent():
    engine = build_engine(seed=1, num_jobs=3, arrival_rate=2.0)
    while not engine._active_jobs:
        assert engine.step()
    first = engine._build_context().snapshot()
    second = first.snapshot()
    for job in second.jobs:
        job.finish_time = -2.0
    assert all(job.finish_time != -2.0 for job in first.jobs)
