"""Thin setup shim.

The offline environment has no `wheel` package, so PEP-517 editable installs
(`pip install -e .`) cannot build a wheel.  This shim lets
`python setup.py develop` perform a legacy editable install; all metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
